// Package router is the cluster's front door: a dependency-free HTTP
// proxy that spreads reads across healthy followers, forwards writes to
// the lease-holding leader, and keeps tail latency flat when part of
// the fleet misbehaves. Its four levers, in the order a request meets
// them: health-aware candidate selection with bounded staleness,
// rendezvous hashing for client affinity, hedged reads against a
// second backend after an adaptive p95 delay, and a global retry
// budget so a sick cluster sees less traffic, not a retry storm.
// Passive outlier ejection (consecutive failures → jittered cooldown)
// runs underneath all of it.
package router

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcbound/internal/admission"
	"mcbound/internal/cluster"
	"mcbound/internal/httpapi"
	"mcbound/internal/resilience"
	"mcbound/internal/stats"
	"mcbound/internal/telemetry"

	"context"
)

// Headers the router stamps on proxied responses.
const (
	// BackendHeader names the backend that served the response — chaos
	// tests and operators use it to see routing decisions.
	BackendHeader = "X-MCBound-Backend"
	// StalenessHeader carries the serving follower's replication lag in
	// seconds when the router had to fall back past the bounded-staleness
	// cut (brownout reads). Absent on fresh reads.
	StalenessHeader = "X-MCBound-Staleness"
)

// Defaults for the zero Config fields.
const (
	DefaultMaxReadLag       = 5 * time.Second
	DefaultHedgeAfterMin    = 5 * time.Millisecond
	DefaultMaxRetries       = 2
	DefaultEjectThreshold   = 5
	DefaultEjectCooldown    = 10 * time.Second
	DefaultMaxEjectFraction = 0.5
	DefaultPollEvery        = time.Second
	DefaultForwardTimeout   = 10 * time.Second
	DefaultMaxBodyBytes     = 8 << 20
	// maxWriteHops bounds the 421 Location chase on the write path,
	// mirroring the replication client.
	maxWriteHops = 3
	// reservoirCap bounds each backend's latency sample.
	reservoirCap = 512
	// hedgeQuantile is the per-backend latency quantile the hedge delay
	// adapts to.
	hedgeQuantile = 0.95
	// hedgeMinSamples gates the adaptive delay: below this many samples
	// a backend's p95 is noise and the floor is used instead.
	hedgeMinSamples = 20
)

// Config tunes the front door. Backends is required; every other zero
// value selects the documented default.
type Config struct {
	// Backends is the static member list the router fronts (it is not
	// itself a member). Member URLs double as the redirect allowlist.
	Backends []cluster.Member
	// MaxReadLag is the bounded-staleness cut: followers lagging more
	// than this are excluded from normal read routing.
	MaxReadLag time.Duration
	// HedgeAfterMin floors the adaptive hedge delay, so a quiet cluster
	// with sub-millisecond p95s does not hedge every request.
	HedgeAfterMin time.Duration
	// MaxRetries caps extra read attempts (distinct backends) after the
	// first; each one must also win a retry-budget token.
	MaxRetries int
	// RetryBudget configures the global token bucket shared by every
	// retried request.
	RetryBudget resilience.BudgetConfig
	// EjectThreshold is the consecutive-failure streak that ejects a
	// backend.
	EjectThreshold int
	// EjectCooldown is the base ejection length; the actual cooldown is
	// jittered uniformly over [0.5, 1.5)× so a fleet of routers does not
	// re-admit a struggling backend in lockstep.
	EjectCooldown time.Duration
	// MaxEjectFraction caps how much of the fleet may sit ejected at
	// once (0 < f < 1); an ejection that would cross it is skipped.
	MaxEjectFraction float64
	// PollEvery is the health-probe period.
	PollEvery time.Duration
	// ForwardTimeout bounds each proxied attempt (streams are exempt).
	ForwardTimeout time.Duration
	// MaxBodyBytes caps the buffered write body (the buffer is what
	// makes 421 re-forwarding safe).
	MaxBodyBytes int64
	// Seed drives every random choice (cooldown jitter) deterministically.
	Seed uint64
	// HTTP overrides the backend transport. It must not set an overall
	// Timeout (that would kill SSE streams); per-attempt deadlines come
	// from ForwardTimeout. Nil selects a plain client.
	HTTP *http.Client
	// Registry, when non-nil, receives the mcbound_router_* metrics.
	Registry *telemetry.Registry
	// Logf, when non-nil, receives routing decisions worth an operator's
	// attention (ejections, leader re-points, brownouts).
	Logf func(format string, args ...any)
}

// Router is the front door. Create with New, start the health poller
// with Run, serve it as an http.Handler.
type Router struct {
	cfg      Config
	hc       *http.Client
	backends []*backend
	byURL    map[string]*backend
	budget   *resilience.Budget
	met      *metrics
	now      func() time.Time

	rngMu sync.Mutex
	rng   *stats.RNG

	// refreshMu single-flights probe rounds; lastRefresh debounces the
	// failure-triggered ones.
	refreshMu   sync.Mutex
	lastRefresh time.Time

	// adopted is the leader learned from a successful 421 chase, used
	// until the next probe round confirms a self-identified leader.
	leaderMu sync.Mutex
	adopted  string

	repoints atomic64
	hedges   atomic64
}

// atomic64 is a tiny counter (metrics hold the authoritative copies;
// these back the CounterFuncs).
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) inc() {
	a.mu.Lock()
	a.v++
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// New validates cfg, applies defaults and builds the router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	if cfg.MaxReadLag <= 0 {
		cfg.MaxReadLag = DefaultMaxReadLag
	}
	if cfg.HedgeAfterMin <= 0 {
		cfg.HedgeAfterMin = DefaultHedgeAfterMin
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.EjectThreshold <= 0 {
		cfg.EjectThreshold = DefaultEjectThreshold
	}
	if cfg.EjectCooldown <= 0 {
		cfg.EjectCooldown = DefaultEjectCooldown
	}
	if cfg.MaxEjectFraction <= 0 || cfg.MaxEjectFraction >= 1 {
		cfg.MaxEjectFraction = DefaultMaxEjectFraction
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = DefaultPollEvery
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	rt := &Router{
		cfg:    cfg,
		hc:     hc,
		byURL:  make(map[string]*backend, len(cfg.Backends)),
		budget: resilience.NewBudget(cfg.RetryBudget),
		now:    time.Now,
		rng:    stats.NewRNG(cfg.Seed),
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for i, m := range cfg.Backends {
		m.URL = strings.TrimRight(m.URL, "/")
		if m.ID == "" || m.URL == "" {
			return nil, fmt.Errorf("router: backend %d needs both id and url", i)
		}
		if seen[m.ID] || rt.byURL[m.URL] != nil {
			return nil, fmt.Errorf("router: duplicate backend %s (%s)", m.ID, m.URL)
		}
		seen[m.ID] = true
		b := &backend{
			member: m,
			res:    telemetry.NewReservoir(reservoirCap, cfg.Seed+uint64(i)+1),
		}
		rt.backends = append(rt.backends, b)
		rt.byURL[m.URL] = b
	}
	sort.Slice(rt.backends, func(i, j int) bool { return rt.backends[i].member.ID < rt.backends[j].member.ID })
	rt.met = newMetrics(cfg.Registry, rt)
	return rt, nil
}

// Budget exposes the global retry budget (health endpoint, tests).
func (rt *Router) Budget() *resilience.Budget { return rt.budget }

// Hedges reports how many hedge attempts have been launched.
func (rt *Router) Hedges() int64 { return rt.hedges.load() }

// Repoints reports how many times a 421 chase re-pointed the leader.
func (rt *Router) Repoints() int64 { return rt.repoints.load() }

// isMember is the redirect allowlist: only configured backend URLs may
// be chased.
func (rt *Router) isMember(base string) bool {
	return rt.byURL[strings.TrimRight(base, "/")] != nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Run probes the fleet once immediately, then on every poll tick until
// ctx ends.
func (rt *Router) Run(ctx context.Context) {
	rt.RefreshNow(ctx)
	t := time.NewTicker(rt.cfg.PollEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.RefreshNow(ctx)
		}
	}
}

// RefreshNow runs one probe round across every backend and waits for
// it. Concurrent callers serialize; each still gets a full round.
func (rt *Router) RefreshNow(ctx context.Context) {
	rt.refreshMu.Lock()
	defer rt.refreshMu.Unlock()
	rt.probeAll(ctx)
	rt.lastRefresh = rt.now()
}

// refreshSoon triggers an asynchronous debounced probe round — the
// data path calls it on failures so routing state catches up with a
// dying backend faster than the next poll tick, without letting a
// failure storm turn into a probe storm.
func (rt *Router) refreshSoon() {
	go func() {
		if !rt.refreshMu.TryLock() {
			return // a round is already running
		}
		defer rt.refreshMu.Unlock()
		if rt.now().Sub(rt.lastRefresh) < rt.cfg.PollEvery/4 {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout())
		defer cancel()
		rt.probeAll(ctx)
		rt.lastRefresh = rt.now()
	}()
}

func (rt *Router) probeTimeout() time.Duration {
	d := rt.cfg.PollEvery
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// probeAll polls every backend's /healthz concurrently.
func (rt *Router) probeAll(ctx context.Context) {
	pctx, cancel := context.WithTimeout(ctx, rt.probeTimeout())
	defer cancel()
	var wg sync.WaitGroup
	now := rt.now()
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			b.probe(pctx, rt.hc, now)
		}(b)
	}
	wg.Wait()
	// A probe round that finds a self-identified leader supersedes any
	// chase-adopted one; keeping the adoption would pin writes to a
	// member the cluster may have moved past again.
	for _, b := range rt.backends {
		s := b.snapshot()
		if s.alive && s.isLeader() {
			rt.leaderMu.Lock()
			if rt.adopted != "" && rt.adopted != b.member.URL {
				rt.logf("router: probe confirmed leader %s, dropping adopted %s", b.member.URL, rt.adopted)
			}
			rt.adopted = ""
			rt.leaderMu.Unlock()
			break
		}
	}
}

// leaderURL resolves the current leader. A leader adopted from a 421
// chase wins first — it is fresher than any probe (the probe round that
// confirms a self-identified leader clears it). Then a backend that
// identifies itself as the lease-holding leader; then any live member's
// observation of where the leader lives — as long as it names a member.
func (rt *Router) leaderURL() string {
	rt.leaderMu.Lock()
	adopted := rt.adopted
	rt.leaderMu.Unlock()
	if lb := rt.byURL[strings.TrimRight(adopted, "/")]; lb != nil {
		if ls := lb.snapshot(); !ls.probed || ls.alive {
			return adopted
		}
	}
	for _, b := range rt.backends {
		s := b.snapshot()
		if s.probed && s.alive && s.isLeader() {
			return b.member.URL
		}
	}
	for _, b := range rt.backends {
		s := b.snapshot()
		if s.probed && s.alive && s.leaderURL != "" && rt.isMember(s.leaderURL) {
			// A member's stale observation may name a leader the router
			// already knows is dead; forwarding there would burn a write.
			if lb := rt.byURL[s.leaderURL]; lb != nil {
				if ls := lb.snapshot(); ls.probed && !ls.alive {
					continue
				}
			}
			return s.leaderURL
		}
	}
	return ""
}

// adopt records a leader learned from a 421 chase.
func (rt *Router) adopt(base string) {
	rt.leaderMu.Lock()
	changed := rt.adopted != base
	rt.adopted = base
	rt.leaderMu.Unlock()
	if changed {
		rt.repoints.inc()
		rt.logf("router: adopted leader %s from redirect chase", base)
	}
}

// clientKey is the rendezvous-hash key: the sanitized X-Client-Id when
// present, the remote host otherwise (same affinity rule as the
// admission layer's rate limiter).
func clientKey(r *http.Request) string {
	if id := admission.ParseClientID(r.Header.Get(admission.ClientIDHeader)); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// readCandidates assembles the preference-ordered backend list for a
// read: fresh followers by rendezvous order, then the leader as
// fallback, and — only when that set is empty — the freshest stale
// follower (brownout read, stale=true). An unprobed backend counts as
// fresh: at startup optimism beats serving nothing.
func (rt *Router) readCandidates(key string) (cands []*backend, stale bool, lag float64) {
	now := rt.now()
	var fresh []*backend
	var leader *backend
	var bestStale *backend
	bestLag := math.Inf(1)
	for _, b := range rt.backends {
		s := b.snapshot()
		if (s.probed && !s.alive) || b.ejected(now) {
			continue
		}
		if s.isLeader() {
			leader = b
			continue
		}
		if s.followState != "disconnected" && s.lagSeconds <= rt.cfg.MaxReadLag.Seconds() {
			fresh = append(fresh, b)
			continue
		}
		if s.lagSeconds < bestLag {
			bestStale, bestLag = b, s.lagSeconds
		}
	}
	sort.SliceStable(fresh, func(i, j int) bool {
		return rendezvousScore(fresh[i].member.ID, key) > rendezvousScore(fresh[j].member.ID, key)
	})
	cands = fresh
	if leader != nil {
		cands = append(cands, leader)
	}
	if len(cands) == 0 && bestStale != nil {
		return []*backend{bestStale}, true, bestLag
	}
	return cands, false, 0
}

// hedgeDelay is when a read's second attempt launches: the smallest
// p95 among the candidate backends (any of them could serve the hedge),
// floored at HedgeAfterMin. Keying on the *fleet's* best p95 rather
// than the primary's own means a uniformly slow backend still gets
// hedged around — its own p95 would never fire.
func (rt *Router) hedgeDelay(cands []*backend) time.Duration {
	best := math.Inf(1)
	for _, b := range cands {
		if b.res.Count() < hedgeMinSamples {
			continue
		}
		if p, ok := b.res.Quantile(hedgeQuantile); ok && p < best {
			best = p
		}
	}
	d := rt.cfg.HedgeAfterMin
	if !math.IsInf(best, 1) {
		if bd := time.Duration(best * float64(time.Second)); bd > d {
			d = bd
		}
	}
	return d
}

// cooldownJitter draws the ejection cooldown multiplier in [0.5, 1.5).
func (rt *Router) cooldownJitter() float64 {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return 0.5 + rt.rng.Float64()
}

// noteSuccess clears a backend's failure streak.
func (rt *Router) noteSuccess(b *backend) { b.observeSuccess() }

// noteFailure counts one failed forward against b and ejects it when
// the streak crosses the threshold — unless ejecting would leave too
// little of the fleet in service (MaxEjectFraction floor).
func (rt *Router) noteFailure(b *backend) {
	if b == nil {
		return
	}
	streak := b.observeFailure()
	rt.refreshSoon()
	if streak < rt.cfg.EjectThreshold {
		return
	}
	now := rt.now()
	ejected := 0
	for _, o := range rt.backends {
		if o != b && o.ejected(now) {
			ejected++
		}
	}
	if float64(ejected+1) > rt.cfg.MaxEjectFraction*float64(len(rt.backends)) {
		// The floor: shedding this backend would eject too much of the
		// fleet. Keep it in rotation — degraded service beats none.
		return
	}
	cd := time.Duration(float64(rt.cfg.EjectCooldown) * rt.cooldownJitter())
	b.eject(now.Add(cd))
	rt.met.ejections.Inc()
	rt.logf("router: ejected %s for %v after %d consecutive failures", b.member.ID, cd.Round(time.Millisecond), streak)
}

// ServeHTTP routes: the router's own endpoints first, then proxying.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		rt.handleHealth(w, r)
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet && rt.cfg.Registry != nil:
		rt.cfg.Registry.Handler().ServeHTTP(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/v1/predictions/stream":
		rt.forwardReadStream(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs/stream":
		rt.forwardWriteStream(w, r)
	case r.Method == http.MethodGet || r.Method == http.MethodHead:
		rt.forwardRead(w, r)
	default:
		rt.forwardWrite(w, r)
	}
}

// writeError emits the same JSON envelope the backends use, so clients
// see one error schema no matter which layer failed.
func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":%s,"code":%q}`+"\n", strconv.Quote(msg), code)
}

// retryAfterSeconds is the brownout hint: roughly one poll period,
// rounded up — by then the router has re-probed the fleet.
func (rt *Router) retryAfterSeconds() string {
	s := int(math.Ceil(rt.cfg.PollEvery.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// handleHealth reports the router's own view of the fleet.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	now := rt.now()
	type row struct {
		ID       string  `json:"id"`
		URL      string  `json:"url"`
		Alive    bool    `json:"alive"`
		Role     string  `json:"role,omitempty"`
		Lag      float64 `json:"replication_lag_seconds"`
		Ejected  bool    `json:"ejected"`
		Failures int64   `json:"ejections_total"`
	}
	rows := make([]row, 0, len(rt.backends))
	available := 0
	for _, b := range rt.backends {
		s := b.snapshot()
		ej := b.ejected(now)
		alive := !s.probed || s.alive
		if alive && !ej {
			available++
		}
		rows = append(rows, row{
			ID: b.member.ID, URL: b.member.URL,
			Alive: alive, Role: s.role, Lag: s.lagSeconds,
			Ejected: ej, Failures: b.ejectionCount(),
		})
	}
	leader := rt.leaderURL()
	status := http.StatusOK
	state := "ok"
	if available == 0 {
		status, state = http.StatusServiceUnavailable, "no_backend"
	} else if leader == "" {
		state = "no_leader" // reads still served: brownout, not outage
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"leader":%q,"available":%d,"backends":`, state, leader, available)
	writeJSONValue(w, rows)
	fmt.Fprintf(w, `,"retry_budget_tokens":%g,"retries_total":%d,"retries_denied_total":%d}`+"\n",
		rt.budget.Tokens(), rt.budget.Retries(), rt.budget.Exhausted())
}

func writeJSONValue(w io.Writer, v any) {
	data, err := jsonMarshal(v)
	if err != nil {
		io.WriteString(w, "null")
		return
	}
	w.Write(data)
}

// --- read path ---------------------------------------------------------

// forwardRead serves GET/HEAD: candidate selection, hedging, budgeted
// retries across distinct backends.
func (rt *Router) forwardRead(w http.ResponseWriter, r *http.Request) {
	cands, stale, lag := rt.readCandidates(clientKey(r))
	if len(cands) == 0 {
		rt.met.requests("read", "no_backend").Inc()
		rt.writeError(w, http.StatusServiceUnavailable, httpapi.CodeNoBackend,
			"no backend can serve this read: every member is down, ejected, or too stale")
		return
	}
	hedgeAfter := rt.hedgeDelay(cands)
	var lastErr error
	for attempt := 0; attempt < len(cands) && attempt <= rt.cfg.MaxRetries; attempt++ {
		if attempt > 0 && !rt.budget.Allow() {
			rt.met.requests("read", "retry_budget").Inc()
			rt.writeError(w, http.StatusServiceUnavailable, httpapi.CodeRetryBudget,
				fmt.Sprintf("retry budget exhausted after: %v", lastErr))
			return
		}
		primary := cands[attempt]
		var hedge *backend
		if !stale && attempt+1 < len(cands) {
			hedge = cands[attempt+1]
		}
		resp, by, release, err := rt.attemptRead(r, primary, hedge, hedgeAfter)
		if err != nil {
			lastErr = err
			continue
		}
		rt.budget.OnSuccess()
		if stale {
			w.Header().Set(StalenessHeader, strconv.FormatFloat(lag, 'f', 3, 64))
			rt.met.staleReads.Inc()
		}
		rt.met.requests("read", "ok").Inc()
		rt.relay(w, resp, by.member.ID, false)
		release()
		return
	}
	rt.met.requests("read", "upstream_error").Inc()
	rt.writeError(w, http.StatusBadGateway, httpapi.CodeUpstream,
		fmt.Sprintf("every read candidate failed: %v", lastErr))
}

// tryResult is one backend attempt's outcome.
type tryResult struct {
	resp   *http.Response
	err    error
	b      *backend
	cancel context.CancelFunc
	dur    time.Duration
}

// attemptRead runs one (possibly hedged) read attempt. On success the
// returned release func must be called after the response body has been
// consumed — it cancels the winner's context. Losers are canceled and
// drained here. A response ≥ 500 counts as failure.
func (rt *Router) attemptRead(r *http.Request, primary, hedge *backend, hedgeAfter time.Duration) (*http.Response, *backend, func(), error) {
	ch := make(chan tryResult, 2)
	// cancels is touched only from this goroutine (launches happen in
	// the select loop below), so it needs no lock.
	cancels := make(map[*backend]context.CancelFunc, 2)
	launch := func(b *backend) {
		actx, cancel := context.WithTimeout(r.Context(), rt.cfg.ForwardTimeout)
		cancels[b] = cancel
		req, err := rt.cloneRequest(actx, r, b.member.URL, nil)
		if err != nil {
			ch <- tryResult{err: err, b: b, cancel: cancel}
			return
		}
		go func() {
			start := time.Now()
			resp, err := rt.hc.Do(req)
			ch <- tryResult{resp: resp, err: err, b: b, cancel: cancel, dur: time.Since(start)}
		}()
	}
	launch(primary)
	inFlight := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedge != nil {
		hedgeTimer = time.NewTimer(hedgeAfter)
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}
	var lastErr error
	for inFlight > 0 {
		select {
		case res := <-ch:
			inFlight--
			if res.err == nil && res.resp.StatusCode < http.StatusInternalServerError {
				// Winner. Cancel anything still in flight right now — the
				// loser's transport aborts instead of running to completion
				// — and leave a drainer to close whatever it returns, so no
				// goroutine or connection outlives the request.
				rt.observeWin(res)
				if res.b == hedge {
					rt.met.hedgeWins.Inc()
				}
				for b, cancel := range cancels {
					if b != res.b {
						cancel()
					}
				}
				if inFlight > 0 {
					rt.drainLosers(ch, inFlight)
				}
				return res.resp, res.b, res.cancel, nil
			}
			lastErr = rt.observeLoss(res)
		case <-hedgeC:
			hedgeC = nil
			launch(hedge)
			inFlight++
			rt.hedges.inc()
			rt.met.hedges.Inc()
		}
	}
	return nil, nil, nil, lastErr
}

// observeWin records a successful attempt: latency sample, streak
// reset, per-backend metric.
func (rt *Router) observeWin(res tryResult) {
	res.b.res.Observe(res.dur.Seconds())
	rt.noteSuccess(res.b)
	rt.met.backendRequests(res.b.member.ID, "ok").Inc()
	rt.met.forwardSeconds.Observe(res.dur.Seconds())
}

// observeLoss records a failed attempt and returns the error to carry.
func (rt *Router) observeLoss(res tryResult) error {
	err := res.err
	if res.resp != nil {
		io.Copy(io.Discard, io.LimitReader(res.resp.Body, 4096))
		res.resp.Body.Close()
		err = fmt.Errorf("backend %s answered %d", res.b.member.ID, res.resp.StatusCode)
	}
	res.cancel()
	rt.noteFailure(res.b)
	rt.met.backendRequests(res.b.member.ID, "error").Inc()
	return err
}

// drainLosers reaps already-canceled in-flight attempts after a
// winner: collect their results off the buffered channel, release
// their contexts, close any bodies. Runs async so the winner relays
// without waiting for the loser's transport to notice the cancellation.
func (rt *Router) drainLosers(ch chan tryResult, n int) {
	go func() {
		for i := 0; i < n; i++ {
			res := <-ch
			res.cancel()
			if res.resp != nil {
				res.resp.Body.Close()
				if res.err == nil && res.resp.StatusCode < http.StatusInternalServerError {
					rt.met.backendRequests(res.b.member.ID, "hedge_loser").Inc()
				}
			}
		}
	}()
}

// --- write path --------------------------------------------------------

// forwardWrite buffers the body (bounded) and forwards to the leader,
// chasing 421 redirects within the membership. Transport failures are
// never blindly retried — the write may have been applied — so the
// client gets a typed 502 and decides.
func (rt *Router) forwardWrite(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rt.met.requests("write", "bad_body").Inc()
		rt.writeError(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		return
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		rt.met.requests("write", "too_large").Inc()
		rt.writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("write body exceeds the router's %d-byte buffer", rt.cfg.MaxBodyBytes))
		return
	}
	leader := rt.leaderURL()
	if leader == "" {
		rt.RefreshNow(r.Context())
		leader = rt.leaderURL()
	}
	if leader == "" {
		rt.brownoutWrite(w, nil)
		return
	}
	chase := resilience.NewChase(leader, maxWriteHops, rt.isMember)
	for {
		actx, cancel := context.WithTimeout(r.Context(), rt.cfg.ForwardTimeout)
		req, rerr := rt.cloneRequest(actx, r, leader, bytes.NewReader(body))
		if rerr != nil {
			cancel()
			rt.met.requests("write", "internal").Inc()
			rt.writeError(w, http.StatusInternalServerError, "internal", rerr.Error())
			return
		}
		start := time.Now()
		resp, derr := rt.hc.Do(req)
		if derr != nil {
			cancel()
			rt.noteFailure(rt.byURL[leader])
			rt.met.requests("write", "upstream_error").Inc()
			rt.met.backendRequests(backendID(rt.byURL[leader]), "error").Inc()
			// The write may or may not have landed; only the client knows
			// whether it is idempotent. 502, not a silent retry.
			rt.writeError(w, http.StatusBadGateway, httpapi.CodeUpstream,
				"leader unreachable mid-write (the write may not have been applied): "+derr.Error())
			return
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			loc := resp.Header.Get("Location")
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			cancel()
			next, ok, cerr := chase.Follow(loc)
			if cerr != nil {
				rt.met.requests("write", "redirect_denied").Inc()
				rt.writeError(w, http.StatusBadGateway, httpapi.CodeUpstream,
					"backend redirected outside cluster membership: "+cerr.Error())
				return
			}
			if !ok {
				// Chased to the hop bound without finding a leader: the
				// cluster is mid-election. Brownout.
				rt.refreshSoon()
				rt.brownoutWrite(w, fmt.Errorf("no member accepted the write after %d redirects", maxWriteHops))
				return
			}
			leader = next
			rt.adopt(next)
			continue
		}
		// 503 lease_lost (and friends) relay as-is but nudge a re-probe so
		// the next write lands on the new leader.
		if resp.StatusCode == http.StatusServiceUnavailable {
			rt.refreshSoon()
		}
		b := rt.byURL[leader]
		if resp.StatusCode < http.StatusInternalServerError {
			rt.noteSuccess(b)
			rt.budget.OnSuccess()
			rt.met.backendRequests(backendID(b), "ok").Inc()
			rt.met.requests("write", "ok").Inc()
			rt.met.forwardSeconds.Observe(time.Since(start).Seconds())
		} else {
			rt.noteFailure(b)
			rt.met.backendRequests(backendID(b), "error").Inc()
			rt.met.requests("write", "upstream_5xx").Inc()
		}
		rt.relay(w, resp, backendID(b), false)
		cancel()
		return
	}
}

func backendID(b *backend) string {
	if b == nil {
		return "unknown"
	}
	return b.member.ID
}

// brownoutWrite is the typed fail-fast when no leader is known: 503 +
// Retry-After, so clients back off exactly one probe period instead of
// hammering a leaderless cluster.
func (rt *Router) brownoutWrite(w http.ResponseWriter, cause error) {
	rt.met.requests("write", "no_leader").Inc()
	w.Header().Set("Retry-After", rt.retryAfterSeconds())
	msg := "no leader holds the lease; writes fail fast until the cluster elects one"
	if cause != nil {
		msg += " (" + cause.Error() + ")"
	}
	rt.writeError(w, http.StatusServiceUnavailable, httpapi.CodeNoLeader, msg)
	rt.logf("router: write browned out: %s", msg)
}

// --- streams -----------------------------------------------------------

// forwardReadStream proxies the SSE prediction stream: pinned to one
// rendezvous-chosen backend, unhedged, flushed per chunk, no attempt
// timeout. A mid-stream backend death ends the response; the client
// reconnects with Last-Event-ID and lands on another backend.
func (rt *Router) forwardReadStream(w http.ResponseWriter, r *http.Request) {
	cands, stale, lag := rt.readCandidates(clientKey(r))
	if len(cands) == 0 {
		rt.met.requests("stream", "no_backend").Inc()
		rt.writeError(w, http.StatusServiceUnavailable, httpapi.CodeNoBackend, "no backend can serve this stream")
		return
	}
	var lastErr error
	for i, b := range cands {
		if i > 0 && !rt.budget.Allow() {
			rt.met.requests("stream", "retry_budget").Inc()
			rt.writeError(w, http.StatusServiceUnavailable, httpapi.CodeRetryBudget,
				fmt.Sprintf("retry budget exhausted after: %v", lastErr))
			return
		}
		req, err := rt.cloneRequest(r.Context(), r, b.member.URL, nil)
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			lastErr = err
			rt.noteFailure(b)
			rt.met.backendRequests(b.member.ID, "error").Inc()
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			lastErr = fmt.Errorf("backend %s answered %d", b.member.ID, resp.StatusCode)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			rt.noteFailure(b)
			rt.met.backendRequests(b.member.ID, "error").Inc()
			continue
		}
		rt.noteSuccess(b)
		rt.budget.OnSuccess()
		rt.met.backendRequests(b.member.ID, "ok").Inc()
		rt.met.requests("stream", "ok").Inc()
		if stale {
			w.Header().Set(StalenessHeader, strconv.FormatFloat(lag, 'f', 3, 64))
		}
		rt.relay(w, resp, b.member.ID, true)
		return
	}
	rt.met.requests("stream", "upstream_error").Inc()
	rt.writeError(w, http.StatusBadGateway, httpapi.CodeUpstream,
		fmt.Sprintf("every stream candidate failed: %v", lastErr))
}

// forwardWriteStream proxies the NDJSON ingest stream to the leader
// unbuffered. The body is consumed as it forwards, so there is exactly
// one attempt: no chase, no retry — a mid-stream failure surfaces to
// the client, which owns resumption.
func (rt *Router) forwardWriteStream(w http.ResponseWriter, r *http.Request) {
	leader := rt.leaderURL()
	if leader == "" {
		rt.RefreshNow(r.Context())
		leader = rt.leaderURL()
	}
	if leader == "" {
		rt.brownoutWrite(w, nil)
		return
	}
	req, err := rt.cloneRequest(r.Context(), r, leader, r.Body)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		rt.noteFailure(rt.byURL[leader])
		rt.met.requests("stream_write", "upstream_error").Inc()
		rt.writeError(w, http.StatusBadGateway, httpapi.CodeUpstream,
			"leader unreachable mid-ingest (a prefix may have been applied): "+err.Error())
		return
	}
	b := rt.byURL[leader]
	if resp.StatusCode < http.StatusInternalServerError {
		rt.noteSuccess(b)
		rt.met.requests("stream_write", "ok").Inc()
	} else {
		rt.noteFailure(b)
		rt.met.requests("stream_write", "upstream_5xx").Inc()
	}
	rt.relay(w, resp, backendID(b), true)
}

// --- proxy plumbing ----------------------------------------------------

// hopByHop are the connection-scoped headers a proxy must not relay.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// cloneRequest rebuilds r against a backend base URL, carrying method,
// URI, headers (minus hop-by-hop) and the provided body.
func (rt *Router) cloneRequest(ctx context.Context, r *http.Request, base string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, base+r.URL.RequestURI(), body)
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		req.Header[k] = vs
	}
	req.Header.Set("X-Forwarded-For", remoteHost(r))
	return req, nil
}

func remoteHost(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// relay copies a backend response to the client. streaming relays
// flush after every chunk so SSE events cross the proxy immediately.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, backendID string, streaming bool) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		h[k] = vs
	}
	h.Set(BackendHeader, backendID)
	w.WriteHeader(resp.StatusCode)
	if streaming {
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if err != nil {
				return
			}
		}
	}
	io.Copy(w, resp.Body)
}
