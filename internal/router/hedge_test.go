package router

import (
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"mcbound/internal/resilience"
)

// keyFor finds a client key whose rendezvous order puts primaryID
// ahead of otherID, so a test can steer which follower a read hits
// first.
func keyFor(t *testing.T, primaryID, otherID string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if rendezvousScore(primaryID, k) > rendezvousScore(otherID, k) {
			return k
		}
	}
	t.Fatal("no key prefers the requested backend")
	return ""
}

func TestHedgedReadWinsOverSlowPrimary(t *testing.T) {
	n1, n2, n3 := threeNode(t)
	n2.set(func(b *stubBackend) { b.delay = 400 * time.Millisecond })
	rt, front := mkRouter(t, Config{HedgeAfterMin: 15 * time.Millisecond}, n1, n2, n3)

	key := keyFor(t, "n2", "n3") // primary = slow n2, hedge = n3
	start := time.Now()
	resp, body := get(t, front, "/v1/model", key)
	dur := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read status %d (%s)", resp.StatusCode, body)
	}
	if b := resp.Header.Get(BackendHeader); b != "n3" {
		t.Fatalf("served by %q, want the hedge backend n3", b)
	}
	if dur >= 400*time.Millisecond {
		t.Fatalf("hedged read took %v — it waited out the slow primary", dur)
	}
	if rt.hedges.load() != 1 {
		t.Fatalf("hedges = %d, want 1", rt.hedges.load())
	}
	if rt.met.hedgeWins.Value() != 1 {
		t.Fatalf("hedge wins = %d, want 1", rt.met.hedgeWins.Value())
	}
}

func TestHedgeLoserIsCanceledAndNoGoroutinesLeak(t *testing.T) {
	n1, n2, n3 := threeNode(t)
	n2.set(func(b *stubBackend) { b.delay = 2 * time.Second })
	rt, front := mkRouter(t, Config{HedgeAfterMin: 10 * time.Millisecond}, n1, n2, n3)
	_ = rt

	key := keyFor(t, "n2", "n3")
	baseline := runtime.NumGoroutine()
	const reads = 5
	for i := 0; i < reads; i++ {
		resp, _ := get(t, front, "/v1/model", key)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: status %d", i, resp.StatusCode)
		}
	}
	// Each losing primary must be canceled the moment the hedge wins —
	// the stub counts requests whose context died before the 2 s delay
	// elapsed. Canceled transports also mean no goroutine sticks around.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n2.canceledCount() >= reads && runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("after %d hedged reads: %d cancellations (want %d), goroutines %d (baseline %d)",
		reads, n2.canceledCount(), reads, runtime.NumGoroutine(), baseline)
}

func TestEjectAndRecoverFlapping(t *testing.T) {
	n1, n2, n3 := threeNode(t)
	n3.set(func(b *stubBackend) { b.failReads = true })
	rt, front := mkRouter(t, Config{
		EjectThreshold: 3,
		EjectCooldown:  60 * time.Millisecond,
		Seed:           7, // jitter in [0.5,1.5)× is seeded — the flap cadence reproduces
		// Generous budget: this test measures ejection behavior, not
		// retry throttling, and every flap burns threshold-many retries.
		RetryBudget: resilience.BudgetConfig{Tokens: 100, Ratio: 1},
	}, n1, n2, n3)

	key := keyFor(t, "n3", "n2") // primary = failing n3
	bad := rt.byURL[n3.url()]
	deadline := time.Now().Add(5 * time.Second)
	for bad.ejectionCount() < 3 && time.Now().Before(deadline) {
		resp, _ := get(t, front, "/v1/model", key)
		// The client must never see the failure: retries absorb it.
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("client saw status %d during eject/recover flapping", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := bad.ejectionCount(); got < 3 {
		t.Fatalf("ejections = %d, want ≥ 3 (eject → cooldown lapse → re-eject)", got)
	}
	// While ejected, reads must not touch the backend.
	if !bad.ejected(rt.now()) {
		// Wait for the current streak to eject again.
		for i := 0; i < 50 && !bad.ejected(rt.now()); i++ {
			get(t, front, "/v1/model", key)
		}
	}
	before := n3.hitCount()
	for i := 0; i < 5; i++ {
		get(t, front, "/v1/model", key)
	}
	if bad.ejected(rt.now()) && n3.hitCount() != before {
		t.Fatal("an ejected backend still received reads")
	}
}

func TestEjectionFloorNeverEmptiesTheFleet(t *testing.T) {
	// Both backends fail every read. With MaxEjectFraction 0.5 of a
	// two-member fleet, at most one may be ejected — the fleet never
	// goes fully dark by the router's own hand.
	n1 := newStubBackend(t, "n1")
	n2 := newStubBackend(t, "n2")
	n1.set(func(b *stubBackend) { b.failReads = true })
	n2.set(func(b *stubBackend) { b.failReads = true })
	rt, front := mkRouter(t, Config{
		EjectThreshold: 2,
		EjectCooldown:  10 * time.Second, // long: an ejection sticks for the test
	}, n1, n2)

	for i := 0; i < 30; i++ {
		resp, _ := get(t, front, "/v1/model", fmt.Sprintf("k%d", i))
		resp.Body.Close()
	}
	now := rt.now()
	ejected := 0
	for _, b := range rt.backends {
		if b.ejected(now) {
			ejected++
		}
	}
	if ejected > 1 {
		t.Fatalf("%d of 2 backends ejected, the floor allows at most 1", ejected)
	}

	// Single-backend fleet: the floor forbids ejection entirely.
	solo := newStubBackend(t, "solo")
	solo.set(func(b *stubBackend) { b.failReads = true })
	rts, fronts := mkRouter(t, Config{EjectThreshold: 2, EjectCooldown: 10 * time.Second}, solo)
	for i := 0; i < 20; i++ {
		resp, _ := get(t, fronts, "/v1/model", "k")
		resp.Body.Close()
	}
	if rts.backends[0].ejected(rts.now()) {
		t.Fatal("the only backend was ejected")
	}
}
