package router

import "hash/fnv"

// rendezvousScore ranks backend candidates for a client key by
// highest-random-weight (rendezvous) hashing: every (backend, key) pair
// gets a stable pseudo-random weight, and a key's preference order is
// the backends sorted by descending weight. The properties that matter
// here: a key sticks to the same follower while the fleet is stable
// (cache and cursor locality), and when one backend drops out only that
// backend's keys move — no global reshuffle, unlike modulo hashing.
func rendezvousScore(backendID, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(backendID))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a has weak avalanche:
// for near-identical keys (tenant-1, tenant-2, ...) the *relative
// order* of two backends' scores stays correlated, which skewed the
// follower split as far as 90/10 on sequential tenant IDs. Finalizing
// restores an unbiased comparison.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
