package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mcbound/internal/cluster"
	"mcbound/internal/telemetry"
)

// Role strings a probe can report for a backend.
const (
	roleLeader   = "leader"
	roleFollower = "follower"
)

// backend is the router's view of one cluster member: static identity
// plus everything the health poller and the data path learn about it.
type backend struct {
	member cluster.Member

	// res samples this backend's successful-read latencies (seconds);
	// its p95 feeds the adaptive hedge delay.
	res *telemetry.Reservoir

	mu sync.Mutex
	// alive is false only when the last probe could not reach the
	// process at all; an unhealthy-but-answering backend stays alive.
	alive bool
	// probed is true once any probe has completed, so an unpolled
	// backend is not mistaken for a dead one at startup.
	probed bool
	role   string
	// leaseHeld mirrors the member's own cluster view (false when the
	// member runs without an elector).
	leaseHeld bool
	// hasElector records whether the probe document carried a cluster
	// section; without one, role alone decides leadership (static
	// single-leader deployments).
	hasElector bool
	// leaderURL is where this member believes the leader lives.
	leaderURL string
	// lagSeconds is the follower's replication lag; 0 for leaders.
	lagSeconds float64
	// followState is the follower three-way state (ok | lagging |
	// disconnected); empty for leaders.
	followState string

	// Passive outlier ejection: consecFails counts consecutive failed
	// forwards, ejectedUntil holds the jittered cooldown deadline.
	consecFails  int
	ejectedUntil time.Time
	ejections    int64
}

// healthDoc is the slice of GET /healthz the router cares about. The
// document is a superset (durability, breaker, replay...); everything
// else is ignored.
type healthDoc struct {
	Status      string `json:"status"`
	Replication *struct {
		Role     string `json:"role"`
		Leader   string `json:"leader"`
		Follower *struct {
			State      string  `json:"state"`
			LagSeconds float64 `json:"replication_lag_seconds"`
		} `json:"follower"`
	} `json:"replication"`
	Cluster *cluster.Status `json:"cluster"`
}

// maxProbeBody bounds how much of a health document one probe reads.
const maxProbeBody = 1 << 20

// probe polls the backend's /healthz once and folds the result into the
// backend's state. Any HTTP answer — 200 or a degraded 503 — counts as
// alive; only a transport failure marks the backend unreachable.
func (b *backend) probe(ctx context.Context, hc *http.Client, now time.Time) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.member.URL+"/healthz", nil)
	if err != nil {
		b.observeProbe(false, healthDoc{})
		return
	}
	resp, err := hc.Do(req)
	if err != nil {
		b.observeProbe(false, healthDoc{})
		return
	}
	var doc healthDoc
	derr := json.NewDecoder(io.LimitReader(resp.Body, maxProbeBody)).Decode(&doc)
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxProbeBody))
	resp.Body.Close()
	if derr != nil {
		// Reachable but not speaking the health schema: treat as alive
		// with nothing learned, so a glitchy probe does not eject a
		// serving backend by itself.
		doc = healthDoc{}
	}
	b.observeProbe(true, doc)
}

// observeProbe applies one probe outcome under the lock.
func (b *backend) observeProbe(alive bool, doc healthDoc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probed = true
	b.alive = alive
	if !alive {
		return
	}
	if doc.Replication != nil {
		b.role = doc.Replication.Role
		b.leaderURL = strings.TrimRight(doc.Replication.Leader, "/")
		if f := doc.Replication.Follower; f != nil {
			b.lagSeconds = f.LagSeconds
			b.followState = f.State
		} else {
			b.lagSeconds = 0
			b.followState = ""
		}
	}
	b.hasElector = doc.Cluster != nil
	if doc.Cluster != nil {
		b.leaseHeld = doc.Cluster.LeaseHeld
		if doc.Cluster.LeaderURL != "" {
			b.leaderURL = strings.TrimRight(doc.Cluster.LeaderURL, "/")
		}
	}
}

// snapshot returns a consistent copy of the mutable state.
func (b *backend) snapshot() backendState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return backendState{
		alive:        b.alive,
		probed:       b.probed,
		role:         b.role,
		leaseHeld:    b.leaseHeld,
		hasElector:   b.hasElector,
		leaderURL:    b.leaderURL,
		lagSeconds:   b.lagSeconds,
		followState:  b.followState,
		ejectedUntil: b.ejectedUntil,
	}
}

type backendState struct {
	alive        bool
	probed       bool
	role         string
	leaseHeld    bool
	hasElector   bool
	leaderURL    string
	lagSeconds   float64
	followState  string
	ejectedUntil time.Time
}

// isLeader reports whether this snapshot self-identifies as the
// cluster's authoritative leader: lease held when an elector runs,
// plain role otherwise.
func (s backendState) isLeader() bool {
	if s.role != roleLeader {
		return false
	}
	return !s.hasElector || s.leaseHeld
}

// ejected reports whether the backend sits in an ejection cooldown.
func (b *backend) ejected(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.ejectedUntil)
}

// observeSuccess clears the consecutive-failure streak (and implicitly
// lets an ejection lapse at its deadline; recovery is time-based).
func (b *backend) observeSuccess() {
	b.mu.Lock()
	b.consecFails = 0
	b.mu.Unlock()
}

// observeFailure counts one failed forward and reports the new streak.
func (b *backend) observeFailure() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	return b.consecFails
}

// eject starts a cooldown ending at until and resets the streak so the
// backend re-enters service with a clean slate.
func (b *backend) eject(until time.Time) {
	b.mu.Lock()
	b.ejectedUntil = until
	b.consecFails = 0
	b.ejections++
	b.mu.Unlock()
}

// ejectionCount reports how many times this backend has been ejected.
func (b *backend) ejectionCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ejections
}
