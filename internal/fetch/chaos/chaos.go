// Package chaos is a deterministic fault-injection decorator for
// fetch.Backend, used to drive the chaos suite: it replays the online
// algorithm against a jobs data storage that fails the way a production
// store does (paper §V deploys against Fugaku's live job database).
// Faults are drawn from a seeded stats.RNG, so a given seed produces
// the exact same fault schedule on every run — tests assert the
// framework's degraded-mode accounting against that schedule.
//
// Two fault kinds are injected per backend method:
//
//   - transient errors, drawn per call with Profile.TransientRate —
//     the retry layer is expected to absorb these;
//   - permanent errors, every Profile.PermanentEveryN-th call — marked
//     with resilience.Permanent so the retry layer fails fast, modelling
//     outages no retry survives (the skipped-retrain path).
//
// An optional per-call latency models a slow store and honors context
// cancellation, so per-attempt timeouts are exercisable too.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/resilience"
	"mcbound/internal/stats"
)

// ErrInjected is the root of every injected fault; tests branch with
// errors.Is to tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Method names a Backend query shape for per-method profiles/counters.
type Method string

// The three fetch.Backend methods.
const (
	MethodJobByID   Method = "job_by_id"
	MethodExecuted  Method = "executed_between"
	MethodSubmitted Method = "submitted_between"
)

// Profile configures the fault mix of one method.
type Profile struct {
	// TransientRate is the probability in [0, 1] that a call fails with
	// a retryable error.
	TransientRate float64
	// PermanentEveryN fails every N-th call (counting all calls to the
	// method, including ones that drew a transient fault) with an error
	// marked resilience.Permanent; 0 disables.
	PermanentEveryN int
	// Latency delays every call before the fault draw, honoring ctx.
	Latency time.Duration
}

// Counters aggregates one method's injection traffic.
type Counters struct {
	Calls     int64 // total calls observed
	Transient int64 // calls failed with a retryable error
	Permanent int64 // calls failed with a permanent error
}

// Backend decorates a fetch.Backend with deterministic fault injection.
// It is safe for concurrent use; note that under concurrency the fault
// schedule depends on call interleaving (single-threaded replays stay
// fully reproducible).
type Backend struct {
	inner fetch.Backend

	mu       sync.Mutex
	rng      *stats.RNG
	profiles map[Method]Profile
	counts   map[Method]*Counters
}

// New wraps inner with no faults configured; Set the profiles next.
func New(inner fetch.Backend, seed uint64) *Backend {
	return &Backend{
		inner:    inner,
		rng:      stats.NewRNG(seed),
		profiles: make(map[Method]Profile),
		counts: map[Method]*Counters{
			MethodJobByID:   {},
			MethodExecuted:  {},
			MethodSubmitted: {},
		},
	}
}

// Set configures the fault profile of one method.
func (b *Backend) Set(m Method, p Profile) {
	b.mu.Lock()
	b.profiles[m] = p
	b.mu.Unlock()
}

// SetAll configures the same fault profile on every method.
func (b *Backend) SetAll(p Profile) {
	for _, m := range []Method{MethodJobByID, MethodExecuted, MethodSubmitted} {
		b.Set(m, p)
	}
}

// Counters returns a snapshot of one method's injection traffic.
func (b *Backend) Counters(m Method) Counters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return *b.counts[m]
}

// inject draws the fault for one call: nil, a transient error, or a
// permanent one.
func (b *Backend) inject(ctx context.Context, m Method) error {
	b.mu.Lock()
	p := b.profiles[m]
	c := b.counts[m]
	c.Calls++
	n := c.Calls
	permanent := p.PermanentEveryN > 0 && n%int64(p.PermanentEveryN) == 0
	transient := !permanent && p.TransientRate > 0 && b.rng.Float64() < p.TransientRate
	switch {
	case permanent:
		c.Permanent++
	case transient:
		c.Transient++
	}
	b.mu.Unlock()

	if p.Latency > 0 {
		t := time.NewTimer(p.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	switch {
	case permanent:
		return resilience.Permanent(fmt.Errorf("%w: permanent outage (%s call %d)", ErrInjected, m, n))
	case transient:
		return fmt.Errorf("%w: transient failure (%s call %d)", ErrInjected, m, n)
	}
	return nil
}

// JobByID implements fetch.Backend.
func (b *Backend) JobByID(ctx context.Context, id string) (*job.Job, error) {
	if err := b.inject(ctx, MethodJobByID); err != nil {
		return nil, err
	}
	return b.inner.JobByID(ctx, id)
}

// ExecutedBetween implements fetch.Backend.
func (b *Backend) ExecutedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := b.inject(ctx, MethodExecuted); err != nil {
		return nil, err
	}
	return b.inner.ExecutedBetween(ctx, start, end)
}

// SubmittedBetween implements fetch.Backend.
func (b *Backend) SubmittedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := b.inject(ctx, MethodSubmitted); err != nil {
		return nil, err
	}
	return b.inner.SubmittedBetween(ctx, start, end)
}
