package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/resilience"
	"mcbound/internal/store"
)

func seededStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		j := &job.Job{
			ID:             fmt.Sprintf("c%04d", i),
			User:           "u0001",
			Name:           "app",
			CoresRequested: 48,
			NodesRequested: 1,
			SubmitTime:     base.Add(time.Duration(i) * time.Hour),
			StartTime:      base.Add(time.Duration(i)*time.Hour + time.Minute),
			EndTime:        base.Add(time.Duration(i)*time.Hour + time.Hour),
		}
		if err := st.Insert(j); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestChaosScheduleIsDeterministic(t *testing.T) {
	run := func() []bool {
		b := New(fetch.StoreBackend{Store: seededStore(t)}, 42)
		b.SetAll(Profile{TransientRate: 0.3})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			_, err := b.JobByID(context.Background(), "c0001")
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs across identically seeded runs", i)
		}
		if !a[i] {
			fails++
		}
	}
	// 200 draws at 30%: the exact count is seed-determined; sanity-bound it.
	if fails < 30 || fails > 90 {
		t.Errorf("injected %d/200 transient faults at rate 0.3", fails)
	}
}

func TestChaosPermanentEveryN(t *testing.T) {
	b := New(fetch.StoreBackend{Store: seededStore(t)}, 1)
	b.Set(MethodExecuted, Profile{PermanentEveryN: 4})
	var permanents []int
	for i := 1; i <= 12; i++ {
		_, err := b.ExecutedBetween(context.Background(), time.Time{}, time.Now())
		if err != nil {
			if !errors.Is(err, ErrInjected) || !resilience.IsPermanent(err) {
				t.Fatalf("call %d: %v, want permanent injected fault", i, err)
			}
			permanents = append(permanents, i)
		}
	}
	if len(permanents) != 3 || permanents[0] != 4 || permanents[1] != 8 || permanents[2] != 12 {
		t.Errorf("permanent faults at calls %v, want [4 8 12]", permanents)
	}
	c := b.Counters(MethodExecuted)
	if c.Calls != 12 || c.Permanent != 3 || c.Transient != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestChaosLatencyHonorsContext(t *testing.T) {
	b := New(fetch.StoreBackend{Store: seededStore(t)}, 1)
	b.Set(MethodJobByID, Profile{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := b.JobByID(ctx, "c0001")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from injected latency", err)
	}
}

// TestChaosResilientBackendConcurrent hammers the full decorator stack
// (resilient → chaos → store) from many goroutines under -race: the
// breaker/retrier state machines and the chaos counters must stay
// consistent, and every logical call must resolve to exactly one of
// success, transient-exhaustion, permanent fault, or breaker rejection.
func TestChaosResilientBackendConcurrent(t *testing.T) {
	cb := New(fetch.StoreBackend{Store: seededStore(t)}, 7)
	cb.SetAll(Profile{TransientRate: 0.3, PermanentEveryN: 17})
	rb := fetch.NewResilientBackend(cb, fetch.ResilienceConfig{
		Retry:   resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Jitter: 0.2},
		Breaker: resilience.BreakerConfig{FailureThreshold: 8, Cooldown: time.Millisecond},
		Seed:    7,
	})

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var err error
				switch i % 3 {
				case 0:
					_, err = rb.JobByID(context.Background(), "c0001")
				case 1:
					_, err = rb.ExecutedBetween(context.Background(), time.Time{}, time.Now())
				default:
					_, err = rb.SubmittedBetween(context.Background(), time.Time{}, time.Now())
				}
				var kind string
				switch {
				case err == nil:
					kind = "ok"
				case errors.Is(err, resilience.ErrOpen):
					kind = "rejected"
				case errors.Is(err, ErrInjected):
					kind = "injected"
				default:
					kind = "other"
				}
				mu.Lock()
				outcomes[kind]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, n := range outcomes {
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("outcomes sum to %d, want %d (%v)", total, workers*perWorker, outcomes)
	}
	if outcomes["other"] != 0 {
		t.Errorf("unclassified outcomes: %v", outcomes)
	}
	if outcomes["ok"] == 0 {
		t.Errorf("no successes under 30%% fault rate with retries: %v", outcomes)
	}
}
