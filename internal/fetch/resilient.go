package fetch

import (
	"context"
	"errors"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/resilience"
	"mcbound/internal/store"
	"mcbound/internal/telemetry"
)

// ResilienceConfig tunes the resilient backend decorator. Zero-value
// fields fall back to the resilience package defaults.
type ResilienceConfig struct {
	// Retry is the per-query retry policy.
	Retry resilience.Policy
	// Breaker is the shared circuit breaker over all three query shapes
	// (one backend = one storage system = one health state).
	Breaker resilience.BreakerConfig
	// Seed drives the deterministic backoff jitter.
	Seed uint64
}

// DefaultResilienceConfig returns the serving defaults: 4 attempts with
// jittered exponential backoff, breaker tripping after 5 consecutive
// failed queries with a 10 s cooldown.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{Retry: resilience.DefaultPolicy(), Seed: 1}
}

// ResilientBackend decorates a Backend with retries and a circuit
// breaker, so a flaky jobs data storage (the paper's production F-DATA
// store) degrades the Training and Inference workflows instead of
// killing them. Lookup misses (store.ErrNotFound) are classified
// permanent — they are answers, not failures — and are neither retried
// nor counted against the breaker.
type ResilientBackend struct {
	inner Backend
	retr  *resilience.Retrier
	brk   *resilience.Breaker
}

// NewResilientBackend wraps inner with the given policy.
func NewResilientBackend(inner Backend, cfg ResilienceConfig) *ResilientBackend {
	return &ResilientBackend{
		inner: inner,
		retr:  resilience.NewRetrier(cfg.Retry, cfg.Seed),
		brk:   resilience.NewBreaker(cfg.Breaker),
	}
}

// Breaker exposes the circuit breaker (health endpoints, telemetry).
func (b *ResilientBackend) Breaker() *resilience.Breaker { return b.brk }

// Retrier exposes the retry executor (telemetry instrumentation).
func (b *ResilientBackend) Retrier() *resilience.Retrier { return b.retr }

// Instrument exports the decorator's attempt and breaker telemetry on
// reg under the "fetch" operation label. Call before serving.
func (b *ResilientBackend) Instrument(reg *telemetry.Registry) {
	resilience.InstrumentRetrier(reg, "fetch", b.retr)
	resilience.InstrumentBreaker(reg, "fetch", b.brk)
}

// do runs one logical query: breaker admission, then the retry loop.
// The breaker records the post-retry outcome — a query that needed two
// attempts but succeeded is a success.
func do[T any](ctx context.Context, b *ResilientBackend, op func(ctx context.Context) (T, error)) (T, error) {
	if err := b.brk.Allow(); err != nil {
		var zero T
		return zero, err
	}
	v, err := resilience.Do(ctx, b.retr, func(ctx context.Context) (T, error) {
		v, err := op(ctx)
		if err != nil && errors.Is(err, store.ErrNotFound) {
			err = resilience.Permanent(err)
		}
		return v, err
	})
	if err != nil && resilience.IsPermanent(err) && errors.Is(err, store.ErrNotFound) {
		b.brk.Record(nil) // a miss is a healthy backend answering
	} else {
		b.brk.Record(err)
	}
	return v, err
}

// JobByID implements Backend.
func (b *ResilientBackend) JobByID(ctx context.Context, id string) (*job.Job, error) {
	return do(ctx, b, func(ctx context.Context) (*job.Job, error) {
		return b.inner.JobByID(ctx, id)
	})
}

// ExecutedBetween implements Backend.
func (b *ResilientBackend) ExecutedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	return do(ctx, b, func(ctx context.Context) ([]*job.Job, error) {
		return b.inner.ExecutedBetween(ctx, start, end)
	})
}

// SubmittedBetween implements Backend.
func (b *ResilientBackend) SubmittedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	return do(ctx, b, func(ctx context.Context) ([]*job.Job, error) {
		return b.inner.SubmittedBetween(ctx, start, end)
	})
}
