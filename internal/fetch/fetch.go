// Package fetch implements the MCBound Data Fetcher component: the
// interface through which every workflow retrieves job data from the jobs
// data storage (paper §III-A). The Fetcher is configured at construction
// with a Backend for the storage technology deployed on the target
// system; this repository ships the in-memory store backend, and the
// interface is the seam where a relational or distributed backend would
// plug in.
package fetch

import (
	"errors"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/store"
)

// Backend abstracts the jobs data storage technology. It mirrors the two
// query shapes of the paper's fetch method.
type Backend interface {
	// JobByID returns the record of a single job.
	JobByID(id string) (*job.Job, error)
	// ExecutedBetween returns jobs completed in [start, end).
	ExecutedBetween(start, end time.Time) ([]*job.Job, error)
	// SubmittedBetween returns jobs submitted in [start, end).
	SubmittedBetween(start, end time.Time) ([]*job.Job, error)
}

// Fetcher is the Data Fetcher component.
type Fetcher struct {
	backend Backend
}

// ErrNilBackend is returned when constructing a Fetcher without a backend.
var ErrNilBackend = errors.New("fetch: nil backend")

// New builds a Fetcher over the given backend.
func New(b Backend) (*Fetcher, error) {
	if b == nil {
		return nil, ErrNilBackend
	}
	return &Fetcher{backend: b}, nil
}

// FetchJob retrieves the data of the single job with the given id
// (the fetch(job_id) form).
func (f *Fetcher) FetchJob(id string) (*job.Job, error) {
	return f.backend.JobByID(id)
}

// FetchExecuted retrieves all jobs executed (completed) between start and
// end (the fetch(start_time, end_time) form used by the Training
// Workflow).
func (f *Fetcher) FetchExecuted(start, end time.Time) ([]*job.Job, error) {
	return f.backend.ExecutedBetween(start, end)
}

// FetchSubmitted retrieves all jobs submitted between start and end (used
// by the Inference Workflow when triggered periodically).
func (f *Fetcher) FetchSubmitted(start, end time.Time) ([]*job.Job, error) {
	return f.backend.SubmittedBetween(start, end)
}

// StoreBackend adapts store.Store to the Backend interface.
type StoreBackend struct {
	Store *store.Store
}

// JobByID implements Backend.
func (b StoreBackend) JobByID(id string) (*job.Job, error) { return b.Store.Get(id) }

// ExecutedBetween implements Backend.
func (b StoreBackend) ExecutedBetween(start, end time.Time) ([]*job.Job, error) {
	return b.Store.ExecutedBetween(start, end), nil
}

// SubmittedBetween implements Backend.
func (b StoreBackend) SubmittedBetween(start, end time.Time) ([]*job.Job, error) {
	return b.Store.SubmittedBetween(start, end), nil
}
