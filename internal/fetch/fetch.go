// Package fetch implements the MCBound Data Fetcher component: the
// interface through which every workflow retrieves job data from the jobs
// data storage (paper §III-A). The Fetcher is configured at construction
// with a Backend for the storage technology deployed on the target
// system; this repository ships the in-memory store backend, and the
// interface is the seam where a relational or distributed backend would
// plug in.
//
// Every fetch takes a context.Context: the serving path threads request
// deadlines and cancellation down to the storage query, so a relational
// or networked backend can abort work the client no longer wants.
package fetch

import (
	"context"
	"errors"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/store"
)

// Backend abstracts the jobs data storage technology. It mirrors the two
// query shapes of the paper's fetch method. Implementations must honor
// context cancellation where the query is not trivially fast.
type Backend interface {
	// JobByID returns the record of a single job.
	JobByID(ctx context.Context, id string) (*job.Job, error)
	// ExecutedBetween returns jobs completed in [start, end).
	ExecutedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error)
	// SubmittedBetween returns jobs submitted in [start, end).
	SubmittedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error)
}

// Fetcher is the Data Fetcher component.
type Fetcher struct {
	backend Backend
}

// ErrNilBackend is returned when constructing a Fetcher without a backend.
var ErrNilBackend = errors.New("fetch: nil backend")

// New builds a Fetcher over the given backend.
func New(b Backend) (*Fetcher, error) {
	if b == nil {
		return nil, ErrNilBackend
	}
	return &Fetcher{backend: b}, nil
}

// FetchJob retrieves the data of the single job with the given id
// (the fetch(job_id) form).
func (f *Fetcher) FetchJob(ctx context.Context, id string) (*job.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.backend.JobByID(ctx, id)
}

// FetchExecuted retrieves all jobs executed (completed) between start and
// end (the fetch(start_time, end_time) form used by the Training
// Workflow).
func (f *Fetcher) FetchExecuted(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.backend.ExecutedBetween(ctx, start, end)
}

// FetchSubmitted retrieves all jobs submitted between start and end (used
// by the Inference Workflow when triggered periodically).
func (f *Fetcher) FetchSubmitted(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.backend.SubmittedBetween(ctx, start, end)
}

// StoreBackend adapts store.Store to the Backend interface. The store is
// in-memory, so queries cannot block: cancellation is checked once at
// entry and the scan itself runs to completion.
type StoreBackend struct {
	Store *store.Store
}

// JobByID implements Backend.
func (b StoreBackend) JobByID(ctx context.Context, id string) (*job.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Store.Get(id)
}

// ExecutedBetween implements Backend.
func (b StoreBackend) ExecutedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Store.ExecutedBetween(start, end), nil
}

// SubmittedBetween implements Backend.
func (b StoreBackend) SubmittedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Store.SubmittedBetween(start, end), nil
}
