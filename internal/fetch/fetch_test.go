package fetch

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/store"
)

func newBackend(t *testing.T) (*store.Store, *Fetcher) {
	t.Helper()
	st := store.New()
	base := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		submit := base.Add(time.Duration(i) * time.Hour)
		if err := st.Insert(&job.Job{
			ID:             string(rune('a' + i)),
			User:           "u",
			Name:           "n",
			CoresRequested: 48,
			NodesRequested: 1,
			NodesAllocated: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit,
			StartTime:      submit.Add(time.Minute),
			EndTime:        submit.Add(31 * time.Minute),
		}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := New(StoreBackend{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return st, f
}

func TestNewRejectsNilBackend(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNilBackend) {
		t.Errorf("err = %v, want ErrNilBackend", err)
	}
}

func TestFetchJob(t *testing.T) {
	_, f := newBackend(t)
	j, err := f.FetchJob(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "a" {
		t.Errorf("fetched %s", j.ID)
	}
	if _, err := f.FetchJob(context.Background(), "zz"); err == nil {
		t.Error("fetch of missing job succeeded")
	}
}

func TestFetchExecuted(t *testing.T) {
	_, f := newBackend(t)
	base := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	jobs, err := f.FetchExecuted(context.Background(), base, base.Add(5*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Jobs end at submit+31m, so ends within [0h, 5h) are i = 0..4.
	if len(jobs) != 5 {
		t.Errorf("fetched %d executed jobs, want 5", len(jobs))
	}
}

func TestFetchSubmitted(t *testing.T) {
	_, f := newBackend(t)
	base := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	jobs, err := f.FetchSubmitted(context.Background(), base.Add(2*time.Hour), base.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("fetched %d submitted jobs, want 2", len(jobs))
	}
}
