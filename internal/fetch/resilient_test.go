package fetch

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/resilience"
	"mcbound/internal/store"
)

// scriptedBackend fails JobByID with the scripted errors in order, then
// succeeds forever; range queries always succeed.
type scriptedBackend struct {
	errs  []error
	calls int
}

func (s *scriptedBackend) next() error {
	s.calls++
	if len(s.errs) == 0 {
		return nil
	}
	err := s.errs[0]
	s.errs = s.errs[1:]
	return err
}

func (s *scriptedBackend) JobByID(ctx context.Context, id string) (*job.Job, error) {
	if err := s.next(); err != nil {
		return nil, err
	}
	return &job.Job{ID: id}, nil
}

func (s *scriptedBackend) ExecutedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := s.next(); err != nil {
		return nil, err
	}
	return nil, nil
}

func (s *scriptedBackend) SubmittedBetween(ctx context.Context, start, end time.Time) ([]*job.Job, error) {
	if err := s.next(); err != nil {
		return nil, err
	}
	return nil, nil
}

func fastPolicy(attempts int) ResilienceConfig {
	return ResilienceConfig{
		Retry:   resilience.Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond},
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
		Seed:    1,
	}
}

func TestResilientBackendAbsorbsTransientFailures(t *testing.T) {
	inner := &scriptedBackend{errs: []error{errors.New("flaky"), errors.New("flaky")}}
	rb := NewResilientBackend(inner, fastPolicy(4))
	j, err := rb.JobByID(context.Background(), "a")
	if err != nil {
		t.Fatalf("JobByID = %v, want success after retries", err)
	}
	if j.ID != "a" || inner.calls != 3 {
		t.Errorf("job = %+v after %d calls, want id a after 3", j, inner.calls)
	}
	if rb.Breaker().State() != resilience.Closed {
		t.Errorf("breaker = %v after a retried success, want closed", rb.Breaker().State())
	}
}

func TestResilientBackendNotFoundIsPermanentAndBenign(t *testing.T) {
	inner := &scriptedBackend{errs: []error{store.ErrNotFound, store.ErrNotFound, store.ErrNotFound}}
	rb := NewResilientBackend(inner, fastPolicy(4))
	for i := 0; i < 3; i++ {
		if _, err := rb.JobByID(context.Background(), "nope"); !errors.Is(err, store.ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound surfaced", err)
		}
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3 (misses must not be retried)", inner.calls)
	}
	if rb.Breaker().State() != resilience.Closed {
		t.Errorf("misses tripped the breaker (threshold 3): %v", rb.Breaker().State())
	}
}

func TestResilientBackendBreakerTripsAndRejects(t *testing.T) {
	down := errors.New("storage down")
	inner := &scriptedBackend{errs: []error{
		down, down, down, down, down, down, // exhausts 2-attempt budget 3×
	}}
	rb := NewResilientBackend(inner, ResilienceConfig{
		Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
	})
	for i := 0; i < 3; i++ {
		if _, err := rb.ExecutedBetween(context.Background(), time.Time{}, time.Time{}); !errors.Is(err, down) {
			t.Fatalf("query %d = %v, want wrapped storage error", i, err)
		}
	}
	if rb.Breaker().State() != resilience.Open {
		t.Fatalf("breaker = %v after 3 failed queries, want open", rb.Breaker().State())
	}
	calls := inner.calls
	_, err := rb.SubmittedBetween(context.Background(), time.Time{}, time.Time{})
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("open breaker did not reject: %v", err)
	}
	if d, ok := resilience.RetryAfter(err); !ok || d <= 0 {
		t.Errorf("rejection carries no Retry-After hint: %v", err)
	}
	if inner.calls != calls {
		t.Errorf("open breaker still reached the backend (%d → %d calls)", calls, inner.calls)
	}
}
