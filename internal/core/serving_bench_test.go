package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mcbound/internal/encode"
	"mcbound/internal/job"
)

// Serving-path benchmarks for the non-blocking inference stack: batch
// classification across the worker pool, the sharded embedding cache
// hot/cold split, and a full Training Workflow pass. cmd/mcbound-bench
// runs the same workloads standalone and records BENCH_serving.json.

// benchBatch builds n submitted-but-unexecuted jobs spread over a fixed
// number of distinct feature strings, mirroring a live submission
// stream where app/user pairs repeat heavily.
func benchBatch(n int) []*job.Job {
	submit := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]*job.Job, n)
	for i := range batch {
		batch[i] = &job.Job{
			ID:             fmt.Sprintf("b%05d", i),
			User:           fmt.Sprintf("u%04d", i%17),
			Name:           fmt.Sprintf("svc_app_%02d", i%50),
			Environment:    "gcc/12.2",
			CoresRequested: 48,
			NodesRequested: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit.Add(time.Duration(i) * time.Second),
		}
	}
	return batch
}

// benchServingFramework returns a trained framework over the seed
// trace.
func benchServingFramework(b *testing.B) *Framework {
	b.Helper()
	fw := newFramework(b, DefaultConfig(), seedStore(b))
	if _, err := fw.Train(context.Background(), time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)); err != nil {
		b.Fatal(err)
	}
	return fw
}

// BenchmarkClassifyBatch measures a 1000-job ClassifyJobs call. The
// workers-1 variant pins GOMAXPROCS to 1 (the serial fallback path);
// workers-max uses every core, so the ratio between the two is the
// worker-pool speedup on this machine.
func BenchmarkClassifyBatch(b *testing.B) {
	for _, bc := range []struct {
		name  string
		procs int
	}{
		{"workers-1", 1},
		{"workers-max", runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(bc.procs)
			defer runtime.GOMAXPROCS(prev)
			fw := benchServingFramework(b)
			batch := benchBatch(1000)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				preds, err := fw.ClassifyJobs(ctx, batch)
				if err != nil {
					b.Fatal(err)
				}
				if len(preds) != len(batch) {
					b.Fatal("short batch")
				}
			}
		})
	}
}

// BenchmarkClassifySingle splits the one-job classify cost by cache
// temperature: cache-hit serves the embedding from the sharded LRU,
// cold disables the cache so every call re-tokenizes and re-projects.
func BenchmarkClassifySingle(b *testing.B) {
	run := func(b *testing.B, capacity int) {
		fw := benchServingFramework(b)
		fw.Encoder().SetCacheCapacity(capacity)
		fw.Encoder().ResetCache()
		one := benchBatch(1)
		ctx := context.Background()
		if _, err := fw.ClassifyJobs(ctx, one); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fw.ClassifyJobs(ctx, one); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cache-hit", func(b *testing.B) { run(b, encode.DefaultCacheCapacity) })
	b.Run("cold", func(b *testing.B) { run(b, 0) })
}

// BenchmarkTrain measures a full Training Workflow pass (fetch, label,
// encode, fit) on the seed trace, the unit of work the hot-swap moves
// off the serving path.
func BenchmarkTrain(b *testing.B) {
	fw := benchServingFramework(b)
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Train(ctx, trainAt); err != nil {
			b.Fatal(err)
		}
	}
}
