// Package core wires the four MCBound components — Data Fetcher, Feature
// Encoder, Job Characterizer and Classification Model — into the two
// CI/CD workflows of the paper's Figure 1: the Training Workflow
// (periodic retraining on recent data) and the Inference Workflow
// (classification of newly submitted jobs before execution).
//
// The serving path is lock-free: the currently deployed model, its
// version and its training instant live in one immutable modelState
// published through an atomic pointer, so a retrain never blocks a
// classification and a classification always observes a consistent
// (model, version, trained-at) triple. Overlapping Training Workflow
// triggers are single-flighted: the first caller trains, later callers
// wait for — and share — its result instead of racing a second fit.
package core

import (
	"context"
	"encoding"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcbound/internal/encode"
	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/ml"
	"mcbound/internal/ml/baseline"
	"mcbound/internal/ml/knn"
	"mcbound/internal/ml/rf"
	"mcbound/internal/persist"
	"mcbound/internal/roofline"
)

// ErrNotTrained is the sentinel returned by inference before the first
// successful Training Workflow; callers branch with errors.Is (the HTTP
// layer maps it to 503).
var ErrNotTrained = errors.New("core: no trained model (run the Training Workflow first)")

// ModelKind selects the Classification Model algorithm.
type ModelKind string

// Supported algorithms.
const (
	ModelKNN ModelKind = "knn"
	ModelRF  ModelKind = "rf"
)

// Config configures a Framework deployment for a target system.
type Config struct {
	// Machine provides the per-node peaks the Job Characterizer needs;
	// defaults to Fugaku.
	Machine job.MachineSpec

	// Features is the encoder's feature subset; nil selects the paper's
	// augmented set.
	Features []encode.Feature

	// Model picks the algorithm; KNN/RF hold its hyper-parameters.
	Model ModelKind
	KNN   knn.Config
	RF    rf.Config

	// ModelFactory, when non-nil, overrides Model/KNN/RF: every Training
	// Workflow trigger calls it for the fresh Classifier instance it
	// fits. It is the injection seam for custom algorithms and for the
	// concurrency tests, which need gated or instrumented models.
	ModelFactory func() (ml.Classifier, error)

	// Alpha is the training window (days of recent executed jobs);
	// Beta the retraining period in days.
	Alpha, Beta int

	// ModelDir, when non-empty, enables versioned model persistence.
	ModelDir string
}

// DefaultConfig returns the Fugaku deployment settings the paper
// concludes with: RF with α=15, β=1.
func DefaultConfig() Config {
	return Config{
		Machine: job.FugakuSpec(),
		Model:   ModelRF,
		KNN:     knn.DefaultConfig(),
		RF:      rf.DefaultConfig(),
		Alpha:   15,
		Beta:    1,
	}
}

// modelState is the immutable snapshot the Inference Workflow serves
// from. A retrain builds a whole new state and publishes it with one
// atomic store, so readers can never observe a torn (model, version)
// pair or a model that has not finished fitting.
type modelState struct {
	model     ml.Classifier
	trained   bool
	version   int // registry version, 0 when persistence is disabled
	trainedAt time.Time

	// fallback is the (job name, #cores) lookup baseline fitted on the
	// last labeled window while no vector model has ever trained. It is
	// the degraded-serving net: a Training Workflow whose model fit
	// failed still leaves the framework able to answer inference.
	fallback ml.JobClassifier
}

// trainCall is one in-flight Training Workflow execution shared by
// coalesced callers.
type trainCall struct {
	done chan struct{} // closed when rep/err are final
	rep  *TrainReport
	err  error
}

// Framework is a deployed MCBound instance.
type Framework struct {
	cfg           Config
	fetcher       *fetch.Fetcher
	encoder       *encode.Encoder
	characterizer *roofline.Characterizer
	registry      *persist.Registry

	// state is the hot-swapped serving snapshot; never nil after New.
	state atomic.Pointer[modelState]

	// trainMu guards inflight (the single-flight slot). It is never held
	// while fetching, characterizing, encoding or fitting — only for the
	// pointer bookkeeping around a trigger.
	trainMu    sync.Mutex
	inflight   *trainCall
	inflightN  atomic.Int32 // 0 or 1; sampled by the train-inflight gauge
	coalescedN atomic.Int64 // triggers absorbed by an in-flight train
	degradedN  atomic.Int64 // predictions served by the lookup fallback

	// indexOv holds runtime overrides of the KNN index switch (set via
	// /v1/train or the -index/-nprobe flags); nil means the deployment
	// config applies unchanged. Future trains merge it into their model
	// config; the nprobe part is also applied to the live model at once.
	indexOv atomic.Pointer[indexOverride]
}

// indexOverride is one immutable override snapshot.
type indexOverride struct {
	mode   knn.IndexMode // "" = leave configured mode
	nprobe int           // 0 = leave configured nprobe
}

// New builds a Framework over a jobs-data-storage backend.
func New(cfg Config, backend fetch.Backend) (*Framework, error) {
	if cfg.Machine.PeakGFlops == 0 {
		cfg.Machine = job.FugakuSpec()
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 15
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 1
	}
	f, err := fetch.New(backend)
	if err != nil {
		return nil, err
	}
	model, err := buildModel(cfg)
	if err != nil {
		return nil, err
	}
	fw := &Framework{
		cfg:           cfg,
		fetcher:       f,
		encoder:       encode.NewEncoder(cfg.Features, nil),
		characterizer: roofline.NewCharacterizer(roofline.ModelFor(cfg.Machine)),
	}
	// The pre-training state carries an unfitted instance so ModelInfo
	// can report the algorithm name before the first swap.
	fw.state.Store(&modelState{model: model})
	if cfg.ModelDir != "" {
		reg, err := persist.NewRegistry(cfg.ModelDir)
		if err != nil {
			return nil, err
		}
		fw.registry = reg
	}
	return fw, nil
}

func buildModel(cfg Config) (ml.Classifier, error) {
	if cfg.ModelFactory != nil {
		return cfg.ModelFactory()
	}
	switch cfg.Model {
	case ModelKNN:
		return knn.New(cfg.KNN), nil
	case ModelRF, "":
		return rf.New(cfg.RF), nil
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", cfg.Model)
	}
}

// Config returns the deployment configuration.
func (f *Framework) Config() Config { return f.cfg }

// SetIndexOptions overrides the KNN index switch at runtime: mode must
// be "", "auto", "on" or "off" ("" leaves the configured mode); nprobe
// adjusts the cells-scanned-per-query knob (0 leaves it). The mode takes
// effect on the next Training Workflow; nprobe is additionally applied
// to the currently served model immediately when it carries an index.
func (f *Framework) SetIndexOptions(mode string, nprobe int) error {
	switch knn.IndexMode(mode) {
	case "", knn.IndexAuto, knn.IndexOn, knn.IndexOff:
	default:
		return fmt.Errorf("core: index mode %q (want auto, on or off)", mode)
	}
	if nprobe < 0 {
		return fmt.Errorf("core: nprobe %d must be non-negative", nprobe)
	}
	prev := f.indexOv.Load()
	ov := indexOverride{}
	if prev != nil {
		ov = *prev
	}
	if mode != "" {
		ov.mode = knn.IndexMode(mode)
	}
	if nprobe > 0 {
		ov.nprobe = nprobe
	}
	f.indexOv.Store(&ov)
	if nprobe > 0 {
		if ix, ok := f.state.Load().model.(ml.Indexed); ok {
			ix.SetNProbe(nprobe)
		}
	}
	return nil
}

// IndexInfo snapshots the served model's search structure (zero value
// when the model is brute-force or not index-capable).
func (f *Framework) IndexInfo() ml.IndexInfo {
	if ix, ok := f.state.Load().model.(ml.Indexed); ok {
		return ix.IndexInfo()
	}
	return ml.IndexInfo{}
}

// modelConfig merges the runtime index override into the deployment
// config for the next model build.
func (f *Framework) modelConfig() Config {
	cfg := f.cfg
	if ov := f.indexOv.Load(); ov != nil {
		if ov.mode != "" {
			cfg.KNN.Index.Mode = ov.mode
		}
		if ov.nprobe > 0 {
			cfg.KNN.Index.NProbe = ov.nprobe
		}
	}
	return cfg
}

// Characterizer exposes the Job Characterizer (for analysis use).
func (f *Framework) Characterizer() *roofline.Characterizer { return f.characterizer }

// Encoder exposes the Feature Encoder.
func (f *Framework) Encoder() *encode.Encoder { return f.encoder }

// Fetcher exposes the Data Fetcher.
func (f *Framework) Fetcher() *fetch.Fetcher { return f.fetcher }

// TrainReport summarizes one Training Workflow execution.
type TrainReport struct {
	WindowStart, WindowEnd time.Time
	FetchedJobs            int
	LabeledJobs            int
	SkippedJobs            int
	QuarantinedJobs        int // jobs dropped for pathological PMU counters (NaN/Inf/negative)
	TrainDuration          time.Duration
	ModelVersion           int // 0 when persistence is disabled

	// Coalesced marks a trigger that arrived while another train was in
	// flight and therefore shares that train's result instead of having
	// fitted a model itself.
	Coalesced bool
}

// TrainingInFlight reports whether a Training Workflow is currently
// executing (sampled by the mcbound_train_inflight gauge).
func (f *Framework) TrainingInFlight() bool { return f.inflightN.Load() > 0 }

// CoalescedTrains returns how many triggers were absorbed by an
// in-flight train instead of fitting their own model.
func (f *Framework) CoalescedTrains() int64 { return f.coalescedN.Load() }

// Train runs the Training Workflow as of now: fetch the jobs executed in
// the last α days, characterize them, encode them and train a fresh
// Classification Model instance entirely outside any lock, then publish
// it with an atomic hot-swap, saving it to the registry when configured.
//
// Overlapping triggers coalesce: if a train is already in flight the
// call waits for it and returns its report with Coalesced set, so a slow
// retrain under a burst of /v1/train requests and cron ticks fits one
// model, not one per trigger. The context bounds the fetch, is
// re-checked between the expensive phases, and also bounds a coalesced
// caller's wait.
func (f *Framework) Train(ctx context.Context, now time.Time) (*TrainReport, error) {
	f.trainMu.Lock()
	if c := f.inflight; c != nil {
		f.trainMu.Unlock()
		f.coalescedN.Add(1)
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, fmt.Errorf("core: train coalesced wait: %w", ctx.Err())
		}
		if c.err != nil {
			return c.rep, c.err
		}
		rep := *c.rep
		rep.Coalesced = true
		return &rep, nil
	}
	c := &trainCall{done: make(chan struct{})}
	f.inflight = c
	f.inflightN.Store(1)
	f.trainMu.Unlock()

	c.rep, c.err = f.train(ctx, now)

	f.trainMu.Lock()
	f.inflight = nil
	f.inflightN.Store(0)
	f.trainMu.Unlock()
	close(c.done)
	return c.rep, c.err
}

// train is the single-flighted Training Workflow body. It holds no lock:
// the only synchronization with the serving path is the final atomic
// publish.
func (f *Framework) train(ctx context.Context, now time.Time) (*TrainReport, error) {
	start := now.AddDate(0, 0, -f.cfg.Alpha)
	window, err := f.fetcher.FetchExecuted(ctx, start, now)
	if err != nil {
		return nil, fmt.Errorf("core: training fetch: %w", err)
	}
	rep := &TrainReport{WindowStart: start, WindowEnd: now, FetchedJobs: len(window)}

	labeled, skipped, quarantined := f.characterizer.GenerateLabels(window)
	rep.LabeledJobs, rep.SkippedJobs, rep.QuarantinedJobs = labeled, skipped, quarantined

	jobs := make([]*job.Job, 0, labeled)
	labels := make([]job.Label, 0, labeled)
	for _, j := range window {
		if j.TrueLabel != job.Unknown {
			jobs = append(jobs, j)
			labels = append(labels, j.TrueLabel)
		}
	}
	if len(jobs) == 0 {
		return rep, fmt.Errorf("core: no characterizable jobs in [%v, %v)", start, now)
	}

	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("core: train canceled: %w", err)
	}

	// Before the first successful vector fit, also fit the lookup
	// baseline on this window: if the model fit below fails, inference
	// can still answer (degraded) instead of returning ErrNotTrained.
	cur := f.state.Load()
	var fallback ml.JobClassifier
	if !cur.trained {
		fb := baseline.New()
		if err := fb.TrainJobs(jobs, labels); err == nil {
			fallback = fb
		}
	}

	model, err := buildModel(f.modelConfig()) // fresh instance per trigger
	if err != nil {
		f.publishFallback(cur, fallback)
		return rep, err
	}
	enc := f.encoder.Encode(jobs)
	t0 := time.Now()
	if err := model.Train(enc, labels); err != nil {
		f.publishFallback(cur, fallback)
		return rep, fmt.Errorf("core: train: %w", err)
	}
	rep.TrainDuration = time.Since(t0)

	// Persistence failures degrade durability, not serving: the fresh
	// model is published either way and the error is surfaced so the
	// operator learns the registry is unwritable.
	var persistErr error
	if f.registry != nil {
		if pm, ok := model.(persist.Model); !ok {
			persistErr = fmt.Errorf("core: model %s is not persistable", model.Name())
		} else if v, err := f.registry.Save(model.Name(), pm); err != nil {
			persistErr = err
		} else {
			rep.ModelVersion = v
		}
	}

	f.state.Store(&modelState{
		model: model, trained: true,
		version: rep.ModelVersion, trainedAt: now,
	})
	return rep, persistErr
}

// publishFallback installs the lookup baseline as the serving net after
// a failed fit, but only while no vector model has ever trained — a
// trained snapshot always beats the baseline (stale beats degraded).
func (f *Framework) publishFallback(cur *modelState, fallback ml.JobClassifier) {
	if cur.trained || fallback == nil {
		return
	}
	// CAS, not Store: a concurrent LoadLatest may have restored a real
	// model since cur was read, and that always wins over the baseline.
	f.state.CompareAndSwap(cur, &modelState{
		model: cur.model, fallback: fallback,
		version: cur.version, trainedAt: cur.trainedAt,
	})
}

// LoadReport summarizes a crash-recovery load: which version is now
// serving and which stored versions were skipped as corrupted.
type LoadReport struct {
	Version     int
	Quarantined []int
}

// LoadLatest restores the newest valid persisted model instead of
// training, e.g. after a restart. Corrupted or truncated version files
// are skipped (and reported as quarantined) so one bad write cannot
// block recovery. It fails when persistence is disabled or no stored
// version unmarshals.
func (f *Framework) LoadLatest() (*LoadReport, error) {
	if f.registry == nil {
		return nil, fmt.Errorf("core: persistence disabled")
	}
	probe, err := buildModel(f.cfg)
	if err != nil {
		return nil, err
	}
	if _, ok := probe.(persist.Model); !ok {
		return nil, fmt.Errorf("core: model %s is not persistable", probe.Name())
	}
	loaded, v, quarantined, err := f.registry.LoadLatestValid(probe.Name(), func() (encoding.BinaryUnmarshaler, error) {
		m, err := buildModel(f.cfg)
		if err != nil {
			return nil, err
		}
		return m.(persist.Model), nil
	})
	rep := &LoadReport{Version: v, Quarantined: quarantined}
	if err != nil {
		return rep, err
	}
	f.state.Store(&modelState{
		model: loaded.(ml.Classifier), trained: true,
		version: v, trainedAt: time.Now().UTC(),
	})
	return rep, nil
}

// Prediction pairs a job with its predicted class and the version of the
// model that produced it. Degraded marks predictions served by the
// lookup fallback while no vector model was available.
type Prediction struct {
	JobID        string    `json:"job_id"`
	Label        job.Label `json:"-"`
	Class        string    `json:"class"`
	ModelVersion int       `json:"model_version"`
	Degraded     bool      `json:"degraded,omitempty"`
}

// Trained reports whether a model instance is available for inference.
func (f *Framework) Trained() bool { return f.state.Load().trained }

// Ready reports whether inference can answer at all: a trained vector
// model or, degraded, the lookup fallback.
func (f *Framework) Ready() bool {
	st := f.state.Load()
	return st.trained || st.fallback != nil
}

// Degraded reports whether inference is being served by the lookup
// fallback because no vector model has ever trained.
func (f *Framework) Degraded() bool {
	st := f.state.Load()
	return !st.trained && st.fallback != nil
}

// DegradedPredictions returns how many predictions the lookup fallback
// has served (sampled by the mcbound_classify_degraded gauge).
func (f *Framework) DegradedPredictions() int64 { return f.degradedN.Load() }

// ModelAge returns the age of the served model snapshot relative to
// now; ok is false while no model has ever trained (the
// mcbound_model_staleness_seconds gauge then reads 0).
func (f *Framework) ModelAge(now time.Time) (age time.Duration, ok bool) {
	st := f.state.Load()
	if !st.trained {
		return 0, false
	}
	return now.Sub(st.trainedAt), true
}

// ModelInfo describes the currently served model. The triple comes from
// one atomic snapshot, so it is always internally consistent even while
// a retrain is publishing.
func (f *Framework) ModelInfo() (name string, version int, trainedAt time.Time) {
	st := f.state.Load()
	return st.model.Name(), st.version, st.trainedAt
}

// ClassifyJobs runs the Inference Workflow on explicit job records
// (e.g. just-submitted jobs pushed by the scheduler hook). The batch is
// encoded and predicted across a GOMAXPROCS-sized worker pool; result
// order matches input order, and every prediction in the batch comes
// from the same model snapshot.
func (f *Framework) ClassifyJobs(ctx context.Context, jobs []*job.Job) ([]Prediction, error) {
	st := f.state.Load()
	if !st.trained && st.fallback == nil {
		return nil, ErrNotTrained
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !st.trained {
		// Degraded mode: no vector model has ever trained; answer from
		// the (job name, #cores) lookup baseline rather than 503.
		labels, err := st.fallback.PredictJobs(jobs)
		if err != nil {
			return nil, fmt.Errorf("core: fallback predict: %w", err)
		}
		f.degradedN.Add(int64(len(jobs)))
		out := make([]Prediction, len(jobs))
		for i, j := range jobs {
			out[i] = Prediction{
				JobID: j.ID, Label: labels[i], Class: labels[i].String(),
				Degraded: true,
			}
		}
		return out, nil
	}
	labels, err := predictBatch(ctx, st.model, f.encoder.Encode(jobs))
	if err != nil {
		return nil, fmt.Errorf("core: predict: %w", err)
	}
	out := make([]Prediction, len(jobs))
	for i, j := range jobs {
		out[i] = Prediction{
			JobID: j.ID, Label: labels[i], Class: labels[i].String(),
			ModelVersion: st.version,
		}
	}
	return out, nil
}

// ClassifyByID classifies a single job fetched from the data storage
// (the per-submission inference trigger).
func (f *Framework) ClassifyByID(ctx context.Context, id string) (Prediction, error) {
	j, err := f.fetcher.FetchJob(ctx, id)
	if err != nil {
		return Prediction{}, err
	}
	out, err := f.ClassifyJobs(ctx, []*job.Job{j})
	if err != nil {
		return Prediction{}, err
	}
	return out[0], nil
}

// ClassifySubmitted classifies every job submitted in [start, end) (the
// periodic inference trigger).
func (f *Framework) ClassifySubmitted(ctx context.Context, start, end time.Time) ([]Prediction, error) {
	jobs, err := f.fetcher.FetchSubmitted(ctx, start, end)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	return f.ClassifyJobs(ctx, jobs)
}
