package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/store"
)

// seedStore builds a deterministic two-app store covering January 2024.
func seedStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	seq := 0
	add := func(day int, name string, perfGF, bwGB float64) {
		submit := start.AddDate(0, 0, day)
		durSec := 1800.0
		flops := perfGF * 1e9 * durSec
		bytes := bwGB * 1e9 * durSec
		err := st.Insert(&job.Job{
			ID:             fmt.Sprintf("c%05d", seq),
			User:           "u0001",
			Name:           name,
			Environment:    "gcc/12.2",
			CoresRequested: 48,
			NodesRequested: 1,
			NodesAllocated: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit,
			StartTime:      submit.Add(time.Minute),
			EndTime:        submit.Add(31 * time.Minute),
			Counters: job.PerfCounters{
				Perf2: flops,
				Perf4: bytes * job.CoresPerCMG / job.CacheLineBytes,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		seq++
	}
	for day := 0; day < 31; day++ {
		for i := 0; i < 6; i++ {
			add(day, "membound_app", 50, 50)  // op = 1
			add(day, "compbound_app", 300, 5) // op = 60
		}
	}
	return st
}

func newFramework(t testing.TB, cfg Config, st *store.Store) *Framework {
	t.Helper()
	fw, err := New(cfg, fetch.StoreBackend{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestTrainAndClassify(t *testing.T) {
	st := seedStore(t)
	fw := newFramework(t, DefaultConfig(), st)
	if fw.Trained() {
		t.Fatal("framework claims trained before Train")
	}
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	rep, err := fw.Train(context.Background(), trainAt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LabeledJobs == 0 || rep.SkippedJobs != 0 {
		t.Errorf("report: %+v", rep)
	}
	if !fw.Trained() {
		t.Fatal("framework not trained after Train")
	}

	// Classify known jobs by id.
	pred, err := fw.ClassifyByID(context.Background(), "c00000") // membound_app
	if err != nil {
		t.Fatal(err)
	}
	if pred.Label != job.MemoryBound {
		t.Errorf("membound_app classified %v", pred.Label)
	}
	pred, err = fw.ClassifyByID(context.Background(), "c00001") // compbound_app
	if err != nil {
		t.Fatal(err)
	}
	if pred.Label != job.ComputeBound {
		t.Errorf("compbound_app classified %v", pred.Label)
	}

	// Classify a submitted range.
	preds, err := fw.ClassifySubmitted(context.Background(), trainAt, trainAt.AddDate(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 12 {
		t.Errorf("classified %d jobs, want 12", len(preds))
	}
	for _, p := range preds {
		if p.Class != p.Label.String() {
			t.Errorf("class string mismatch: %+v", p)
		}
	}
}

func TestClassifyBeforeTrainFails(t *testing.T) {
	fw := newFramework(t, DefaultConfig(), seedStore(t))
	if _, err := fw.ClassifyByID(context.Background(), "c00000"); err == nil {
		t.Error("inference before training succeeded")
	}
}

func TestTrainEmptyWindowFails(t *testing.T) {
	fw := newFramework(t, DefaultConfig(), seedStore(t))
	if _, err := fw.Train(context.Background(), time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)); err == nil {
		t.Error("training on an empty window succeeded")
	}
}

func TestKNNModelKind(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = ModelKNN
	fw := newFramework(t, cfg, seedStore(t))
	if _, err := fw.Train(context.Background(), time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	name, _, _ := fw.ModelInfo()
	if name != "knn" {
		t.Errorf("model = %s", name)
	}
}

func TestUnknownModelKind(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "svm"
	if _, err := New(cfg, fetch.StoreBackend{Store: store.New()}); err == nil {
		t.Error("accepted unknown model kind")
	}
}

func TestPersistenceAndLoadLatest(t *testing.T) {
	st := seedStore(t)
	cfg := DefaultConfig()
	cfg.ModelDir = t.TempDir()
	fw := newFramework(t, cfg, st)
	rep, err := fw.Train(context.Background(), time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModelVersion != 1 {
		t.Errorf("version = %d, want 1", rep.ModelVersion)
	}

	// A fresh framework over the same dir restores the model without
	// retraining.
	fresh := newFramework(t, cfg, st)
	lrep, err := fresh.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Version != 1 || !fresh.Trained() {
		t.Errorf("restored version %d, trained %v", lrep.Version, fresh.Trained())
	}
	if len(lrep.Quarantined) != 0 {
		t.Errorf("quarantined = %v on a healthy registry", lrep.Quarantined)
	}
	pred, err := fresh.ClassifyByID(context.Background(), "c00000")
	if err != nil {
		t.Fatal(err)
	}
	if pred.Label != job.MemoryBound {
		t.Errorf("restored model classified %v", pred.Label)
	}
}

func TestLoadLatestWithoutPersistence(t *testing.T) {
	fw := newFramework(t, DefaultConfig(), seedStore(t))
	if _, err := fw.LoadLatest(); err == nil {
		t.Error("LoadLatest without ModelDir succeeded")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	fw := newFramework(t, Config{}, seedStore(t))
	cfg := fw.Config()
	if cfg.Alpha != 15 || cfg.Beta != 1 {
		t.Errorf("defaults = α%d β%d", cfg.Alpha, cfg.Beta)
	}
	if cfg.Machine.Name != "Fugaku" {
		t.Errorf("machine = %s", cfg.Machine.Name)
	}
}
