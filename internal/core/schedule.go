package core

import (
	"time"

	"mcbound/internal/stats"
)

// DefaultRetrainJitter is the fraction of the retraining period that
// RetrainSchedule spreads ticks over: each interval lands uniformly in
// period ± 10%.
const DefaultRetrainJitter = 0.10

// RetrainSchedule paces the cron-equivalent retraining ticker with
// seeded jitter. A fleet of replicas started together with the same
// -retrain-every would otherwise fire their Training Workflows in
// lockstep — every node burning background concurrency at the same
// instant, and a follower fleet hammering the leader's fetch path
// simultaneously. Drawing each interval from period ± jitter·period
// (uniform, deterministic per seed) de-synchronizes the fleet while
// keeping the long-run retraining rate exactly 1/period.
type RetrainSchedule struct {
	period time.Duration
	jitter float64
	rng    *stats.RNG
}

// NewRetrainSchedule builds a schedule around period. jitter is the
// half-width fraction (0 disables jitter; values are clamped to [0, 1)),
// seed makes the interval sequence reproducible.
func NewRetrainSchedule(period time.Duration, jitter float64, seed uint64) *RetrainSchedule {
	if jitter < 0 {
		jitter = 0
	}
	if jitter >= 1 {
		jitter = 0.99
	}
	return &RetrainSchedule{period: period, jitter: jitter, rng: stats.NewRNG(seed)}
}

// Next draws the delay until the next retraining tick: uniform in
// [period·(1−jitter), period·(1+jitter)], never below 1ms so a
// pathological period cannot busy-loop the ticker.
func (s *RetrainSchedule) Next() time.Duration {
	d := s.period
	if s.jitter > 0 {
		f := 1 + s.jitter*(2*s.rng.Float64()-1)
		d = time.Duration(float64(s.period) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
