package core

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/ml"
	"mcbound/internal/ml/knn"
)

// raceModel is a Classifier instrumented to detect hot-swap invariant
// violations: predicting on an instance whose Train has not completed
// means a half-built model was published, and a second Train on the
// same instance means the framework reused an instance across triggers.
type raceModel struct {
	trained atomic.Bool
	fitErr  atomic.Pointer[string]
}

func (m *raceModel) Train(x [][]float32, y []job.Label) error {
	if m.trained.Load() {
		msg := "raceModel trained twice: instance reused across triggers"
		m.fitErr.Store(&msg)
	}
	runtime.Gosched() // widen the publish window
	m.trained.Store(true)
	return nil
}

func (m *raceModel) Predict(x [][]float32) ([]job.Label, error) {
	if !m.trained.Load() {
		return nil, errors.New("raceModel: Predict before Train completed (torn swap)")
	}
	out := make([]job.Label, len(x))
	for i := range out {
		out[i] = job.MemoryBound
	}
	return out, nil
}

func (m *raceModel) Name() string { return "race" }

// persist.Model round-trip so the registry can version raceModel swaps.
func (m *raceModel) MarshalBinary() ([]byte, error) { return []byte{1}, nil }
func (m *raceModel) UnmarshalBinary([]byte) error   { m.trained.Store(true); return nil }

// gatedModel blocks inside Train until released, simulating an
// arbitrarily slow model fit.
type gatedModel struct {
	raceModel
	startedOnce sync.Once
	started     chan struct{}
	release     chan struct{}
}

func newGatedModel() *gatedModel {
	return &gatedModel{started: make(chan struct{}), release: make(chan struct{})}
}

func (m *gatedModel) Train(x [][]float32, y []job.Label) error {
	m.startedOnce.Do(func() { close(m.started) })
	<-m.release
	return m.raceModel.Train(x, y)
}

// TestConcurrentTrainClassifyStress hammers Classify from N goroutines
// while M goroutines loop Train on a live Framework. Run under -race
// (make check does). Invariants: no classify error other than
// ErrNotTrained before the first swap completes, every batch served by
// one model version, versions never move backwards for an observer, and
// no prediction ever reaches a model whose fit has not finished.
func TestConcurrentTrainClassifyStress(t *testing.T) {
	st := seedStore(t)
	cfg := DefaultConfig()
	cfg.ModelDir = t.TempDir()
	models := make([]*raceModel, 0, 64)
	var modelsMu sync.Mutex
	cfg.ModelFactory = func() (ml.Classifier, error) {
		m := &raceModel{}
		modelsMu.Lock()
		models = append(models, m)
		modelsMu.Unlock()
		return m, nil
	}
	fw := newFramework(t, cfg, st)
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)

	jobs := make([]*job.Job, 0, 4)
	for _, id := range []string{"c00000", "c00001", "c00002", "c00003"} {
		j, err := st.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	const (
		trainers      = 3
		trainsPer     = 15
		classifiers   = 8
		classifiesPer = 300
	)
	ctx := context.Background()
	var (
		wg          sync.WaitGroup
		start       = make(chan struct{})
		swapDone    atomic.Bool // true once any Train returned successfully
		trainErrs   atomic.Int64
		notTrainedN atomic.Int64
	)
	for m := 0; m < trainers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < trainsPer; i++ {
				if _, err := fw.Train(ctx, trainAt); err != nil {
					trainErrs.Add(1)
					t.Errorf("train: %v", err)
					return
				}
				swapDone.Store(true)
			}
		}()
	}
	for n := 0; n < classifiers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			lastVersion := -1
			for i := 0; i < classifiesPer; i++ {
				preds, err := fw.ClassifyJobs(ctx, jobs)
				if err != nil {
					if errors.Is(err, ErrNotTrained) && !swapDone.Load() {
						notTrainedN.Add(1)
						runtime.Gosched()
						continue
					}
					t.Errorf("classify: %v", err)
					return
				}
				v := preds[0].ModelVersion
				for _, p := range preds {
					if p.ModelVersion != v {
						t.Errorf("torn batch: versions %d and %d in one Classify", v, p.ModelVersion)
						return
					}
				}
				if v < lastVersion {
					t.Errorf("model version went backwards: %d after %d", v, lastVersion)
					return
				}
				lastVersion = v
				name, mv, at := fw.ModelInfo()
				if name == "" || mv < v || (mv > 0 && at.IsZero()) {
					t.Errorf("inconsistent ModelInfo: %q v%d at %v (observer at v%d)", name, mv, at, v)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if trainErrs.Load() > 0 {
		t.Fatalf("%d train errors", trainErrs.Load())
	}
	modelsMu.Lock()
	defer modelsMu.Unlock()
	for i, m := range models {
		if msg := m.fitErr.Load(); msg != nil {
			t.Errorf("model %d: %s", i, *msg)
		}
	}
	// +1: New builds one throwaway instance to validate the config.
	if len(models) > trainers*trainsPer+1 {
		t.Errorf("built %d models for %d triggers: single-flight leaked", len(models), trainers*trainsPer)
	}
}

// TestConcurrentIndexedModelStress is the indexed-model variant of the
// hot-swap stress: real KNN classifiers carrying an IVF index are
// trained and swapped while classifiers predict through the index and
// another goroutine flips the live nprobe knob via SetIndexOptions. Run
// under -race (make check does). Invariants: predictions are always a
// definite class from a consistent snapshot, versions never move
// backwards, and the final served model actually carries an index.
func TestConcurrentIndexedModelStress(t *testing.T) {
	st := seedStore(t)
	cfg := DefaultConfig()
	cfg.ModelDir = t.TempDir()
	cfg.ModelFactory = func() (ml.Classifier, error) {
		return knn.New(knn.Config{K: 3, P: 2, Index: knn.IndexConfig{
			Mode:      knn.IndexOn,
			NClusters: 2,
			NProbe:    1,
			Seed:      42,
		}}), nil
	}
	fw := newFramework(t, cfg, st)
	ctx := context.Background()
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	if _, err := fw.Train(ctx, trainAt); err != nil {
		t.Fatal(err)
	}
	if !fw.IndexInfo().Enabled {
		t.Fatal("initial model carries no index")
	}

	jobs := make([]*job.Job, 0, 4)
	for _, id := range []string{"c00000", "c00001", "c00002", "c00003"} {
		j, err := st.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	const (
		trainers      = 2
		trainsPer     = 10
		classifiers   = 6
		classifiesPer = 200
		tuners        = 2
		tunesPer      = 100
	)
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	for m := 0; m < trainers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < trainsPer; i++ {
				if _, err := fw.Train(ctx, trainAt); err != nil {
					t.Errorf("train: %v", err)
					return
				}
			}
		}()
	}
	for n := 0; n < tuners; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			<-start
			for i := 0; i < tunesPer; i++ {
				if err := fw.SetIndexOptions("", 1+(i+n)%4); err != nil {
					t.Errorf("set index options: %v", err)
					return
				}
			}
		}(n)
	}
	for n := 0; n < classifiers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			lastVersion := -1
			for i := 0; i < classifiesPer; i++ {
				preds, err := fw.ClassifyJobs(ctx, jobs)
				if err != nil {
					t.Errorf("classify: %v", err)
					return
				}
				v := preds[0].ModelVersion
				for _, p := range preds {
					if p.ModelVersion != v {
						t.Errorf("torn batch: versions %d and %d in one Classify", v, p.ModelVersion)
						return
					}
					if p.Label != job.MemoryBound && p.Label != job.ComputeBound {
						t.Errorf("indefinite prediction %v from indexed model", p.Label)
						return
					}
				}
				if v < lastVersion {
					t.Errorf("model version went backwards: %d after %d", v, lastVersion)
					return
				}
				lastVersion = v
				// The info snapshot must always be internally consistent,
				// even mid-swap or mid-tune.
				if info := fw.IndexInfo(); info.Enabled {
					if info.Kind != "ivf" || info.Clusters < 1 || info.NProbe < 1 || info.NProbe > info.Clusters {
						t.Errorf("inconsistent IndexInfo: %+v", info)
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if !fw.IndexInfo().Enabled {
		t.Error("final served model carries no index")
	}
}

// TestClassifyNotBlockedByTrain asserts the acceptance criterion that a
// retrain no longer stalls the serving path: Classify latency while a
// Train is parked inside the model fit stays within 10× of idle latency
// (plus a small absolute floor against scheduler noise on loaded CI).
func TestClassifyNotBlockedByTrain(t *testing.T) {
	st := seedStore(t)
	cfg := DefaultConfig()
	gate := newGatedModel()
	var calls atomic.Int64
	cfg.ModelFactory = func() (ml.Classifier, error) {
		// Call 1 = New's validation build, call 2 = the fast initial
		// train, call 3 = the gated retrain under measurement.
		if calls.Add(1) == 3 {
			return gate, nil
		}
		return &raceModel{}, nil
	}
	fw := newFramework(t, cfg, st)
	ctx := context.Background()
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	if _, err := fw.Train(ctx, trainAt); err != nil {
		t.Fatal(err)
	}
	j, err := st.Get("c00000")
	if err != nil {
		t.Fatal(err)
	}
	batch := []*job.Job{j}

	const samples = 60
	measure := func() time.Duration {
		lat := make([]time.Duration, samples)
		for i := range lat {
			t0 := time.Now()
			if _, err := fw.ClassifyJobs(ctx, batch); err != nil {
				t.Fatalf("classify: %v", err)
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat[samples/2]
	}
	idle := measure()

	trainDone := make(chan error, 1)
	go func() {
		_, err := fw.Train(ctx, trainAt)
		trainDone <- err
	}()
	<-gate.started // Train is now parked inside the model fit
	if !fw.TrainingInFlight() {
		t.Error("TrainingInFlight false while the fit is running")
	}
	busy := measure()
	close(gate.release)
	if err := <-trainDone; err != nil {
		t.Fatalf("gated train: %v", err)
	}
	if fw.TrainingInFlight() {
		t.Error("TrainingInFlight true after the fit returned")
	}

	limit := 10*idle + 5*time.Millisecond
	if busy > limit {
		t.Errorf("classify median under retrain = %v, idle = %v: exceeds 10×+5ms bound", busy, idle)
	}
	t.Logf("classify median: idle=%v under-retrain=%v", idle, busy)
}

// TestTrainSingleFlightCoalesces asserts that a trigger arriving while a
// train is in flight shares the in-flight result instead of fitting a
// second model, and that a coalesced waiter honours its context.
func TestTrainSingleFlightCoalesces(t *testing.T) {
	st := seedStore(t)
	cfg := DefaultConfig()
	gate := newGatedModel()
	var calls atomic.Int64
	cfg.ModelFactory = func() (ml.Classifier, error) {
		// Call 1 = New's validation build, call 2 = train A's gated fit.
		if calls.Add(1) == 2 {
			return gate, nil
		}
		return &raceModel{}, nil
	}
	fw := newFramework(t, cfg, st)
	ctx := context.Background()
	nowA := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	nowB := time.Date(2024, 1, 21, 0, 0, 0, 0, time.UTC)

	type result struct {
		rep *TrainReport
		err error
	}
	aCh := make(chan result, 1)
	go func() {
		rep, err := fw.Train(ctx, nowA)
		aCh <- result{rep, err}
	}()
	<-gate.started

	bCh := make(chan result, 1)
	go func() {
		rep, err := fw.Train(ctx, nowB)
		bCh <- result{rep, err}
	}()

	// A canceled waiter must abandon the coalesced wait promptly.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := fw.Train(canceled, nowB); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled coalesced wait returned %v", err)
	}

	select {
	case r := <-bCh:
		t.Fatalf("second trigger returned before the in-flight train finished: %+v, %v", r.rep, r.err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate.release)
	a := <-aCh
	b := <-bCh
	if a.err != nil || b.err != nil {
		t.Fatalf("train errors: a=%v b=%v", a.err, b.err)
	}
	if a.rep.Coalesced {
		t.Error("originating trigger marked coalesced")
	}
	if !b.rep.Coalesced {
		t.Error("second trigger not marked coalesced")
	}
	if !b.rep.WindowEnd.Equal(a.rep.WindowEnd) {
		t.Errorf("coalesced report window end %v differs from in-flight %v", b.rep.WindowEnd, a.rep.WindowEnd)
	}
	if got := calls.Load(); got != 2 { // 1 at New (validation) + 1 for train A
		t.Errorf("model factory called %d times, want 2 (coalesced trigger built one)", got)
	}
	if fw.CoalescedTrains() < 2 {
		t.Errorf("CoalescedTrains = %d, want >= 2", fw.CoalescedTrains())
	}
}

// TestClassifyBatchParallelMatchesSerial pins order preservation: the
// fanned-out batch must produce exactly the per-job predictions of the
// serial path, row for row.
func TestClassifyBatchParallelMatchesSerial(t *testing.T) {
	st := seedStore(t)
	fw := newFramework(t, DefaultConfig(), st)
	ctx := context.Background()
	if _, err := fw.Train(ctx, time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	all := st.All()
	if len(all) < 2*minPredictChunk {
		t.Fatalf("store too small to force the parallel path: %d jobs", len(all))
	}
	batch, err := fw.ClassifyJobs(ctx, all)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range all {
		single, err := fw.ClassifyJobs(ctx, []*job.Job{j})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].JobID != j.ID || batch[i].Label != single[0].Label {
			t.Fatalf("row %d: batch (%s,%v) vs single (%s,%v)",
				i, batch[i].JobID, batch[i].Label, single[0].JobID, single[0].Label)
		}
	}
}

// TestClassifyBatchCanceledContext asserts the worker pool honours
// cancellation before fanning out.
func TestClassifyBatchCanceledContext(t *testing.T) {
	st := seedStore(t)
	fw := newFramework(t, DefaultConfig(), st)
	if _, err := fw.Train(context.Background(), time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.ClassifyJobs(ctx, st.All()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled classify returned %v", err)
	}
}
