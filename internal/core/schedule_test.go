package core

import (
	"testing"
	"time"
)

func TestRetrainScheduleBoundsAndMean(t *testing.T) {
	period := time.Hour
	s := NewRetrainSchedule(period, DefaultRetrainJitter, 42)
	lo := time.Duration(float64(period) * (1 - DefaultRetrainJitter))
	hi := time.Duration(float64(period) * (1 + DefaultRetrainJitter))
	var sum time.Duration
	const n = 10_000
	distinct := map[time.Duration]bool{}
	for i := 0; i < n; i++ {
		d := s.Next()
		if d < lo || d > hi {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		sum += d
		distinct[d] = true
	}
	// Uniform over period ± 10%: the mean stays within 1% of the period,
	// so the long-run retraining rate is unchanged.
	mean := sum / n
	if diff := (mean - period).Abs(); diff > period/100 {
		t.Fatalf("mean interval %v drifted %v from period %v", mean, diff, period)
	}
	if len(distinct) < n/2 {
		t.Fatalf("only %d distinct draws over %d ticks — jitter not spreading", len(distinct), n)
	}
}

func TestRetrainScheduleDeterministicPerSeed(t *testing.T) {
	a := NewRetrainSchedule(time.Hour, DefaultRetrainJitter, 7)
	b := NewRetrainSchedule(time.Hour, DefaultRetrainJitter, 7)
	c := NewRetrainSchedule(time.Hour, DefaultRetrainJitter, 8)
	sameAsC := 0
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, av, bv)
		}
		if av == cv {
			sameAsC++
		}
	}
	if sameAsC == 100 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRetrainScheduleZeroJitterIsExact(t *testing.T) {
	s := NewRetrainSchedule(time.Hour, 0, 1)
	for i := 0; i < 10; i++ {
		if d := s.Next(); d != time.Hour {
			t.Fatalf("zero-jitter draw = %v, want exactly 1h", d)
		}
	}
}

func TestRetrainScheduleFloorsPathologicalPeriods(t *testing.T) {
	s := NewRetrainSchedule(0, DefaultRetrainJitter, 1)
	if d := s.Next(); d < time.Millisecond {
		t.Fatalf("zero period drew %v, want >= 1ms floor", d)
	}
	// Out-of-range jitter is clamped, not propagated.
	s = NewRetrainSchedule(time.Second, 5.0, 1)
	if d := s.Next(); d <= 0 {
		t.Fatalf("clamped jitter drew %v, want positive", d)
	}
}
