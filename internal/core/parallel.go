package core

import (
	"context"
	"runtime"
	"sync"

	"mcbound/internal/job"
	"mcbound/internal/ml"
)

// minPredictChunk is the smallest per-worker slice worth a goroutine:
// below it the spawn/copy overhead exceeds the prediction work, so small
// batches (and the single-job path) stay on the caller's goroutine.
const minPredictChunk = 64

// predictBatch fans a batch of encoded rows across a GOMAXPROCS-sized
// worker pool. Every row is independent (the ml.Classifier contract
// requires concurrent-safe Predict after Train), so the batch is split
// into contiguous chunks whose results are written straight into the
// output slice — input order is preserved by construction. The first
// chunk error cancels the remaining chunks via the derived context.
func predictBatch(ctx context.Context, model ml.Classifier, enc [][]float32) ([]job.Label, error) {
	n := len(enc)
	workers := runtime.GOMAXPROCS(0)
	if max := (n + minPredictChunk - 1) / minPredictChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		return model.Predict(enc)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]job.Label, n)
	chunk := (n + workers - 1) / workers

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			labels, err := model.Predict(enc[lo:hi])
			if err != nil {
				fail(err)
				return
			}
			copy(out[lo:hi], labels)
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
