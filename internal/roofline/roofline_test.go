package roofline

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"mcbound/internal/job"
)

func fugakuModel() Model { return ModelFor(job.FugakuSpec()) }

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 1024); err == nil {
		t.Error("accepted zero peak performance")
	}
	if _, err := NewModel(3380, -1); err == nil {
		t.Error("accepted negative bandwidth")
	}
	m, err := NewModel(3380, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakGFlops != 3380 {
		t.Errorf("peak = %g", m.PeakGFlops)
	}
}

func TestRidgePoint(t *testing.T) {
	m := fugakuModel()
	ridge := m.RidgePoint()
	if math.Abs(ridge-3380.0/1024.0) > 1e-12 {
		t.Errorf("ridge = %g", ridge)
	}
}

func TestAttainableRoofShape(t *testing.T) {
	m := fugakuModel()
	ridge := m.RidgePoint()
	// Bandwidth-limited region: attainable = op * bw.
	if got := m.Attainable(ridge / 2); math.Abs(got-ridge/2*1024) > 1e-9 {
		t.Errorf("attainable below ridge = %g", got)
	}
	// Compute-limited region: flat at peak.
	if got := m.Attainable(ridge * 10); got != 3380 {
		t.Errorf("attainable above ridge = %g, want peak", got)
	}
	// At the ridge both constraints are equal.
	if got := m.Attainable(ridge); math.Abs(got-3380) > 1e-9 {
		t.Errorf("attainable at ridge = %g", got)
	}
}

func TestClassifyBoundary(t *testing.T) {
	m := fugakuModel()
	ridge := m.RidgePoint()
	if m.Classify(ridge) != job.MemoryBound {
		t.Error("op == ridge must be memory-bound (paper labels > only)")
	}
	if m.Classify(ridge+1e-9) != job.ComputeBound {
		t.Error("op just above ridge must be compute-bound")
	}
	if m.Classify(0.01) != job.MemoryBound || m.Classify(100) != job.ComputeBound {
		t.Error("far-from-ridge classification wrong")
	}
}

// syntheticJob builds a completed job whose counters encode exactly the
// given per-node performance (GFlop/s) and bandwidth (GB/s).
func syntheticJob(perfGF, bwGB float64, durSec float64, nodes int) *job.Job {
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	flops := perfGF * 1e9 * durSec * float64(nodes)
	bytes := bwGB * 1e9 * durSec * float64(nodes)
	return &job.Job{
		ID:             "t1",
		User:           "u",
		NodesAllocated: nodes,
		StartTime:      start,
		EndTime:        start.Add(time.Duration(durSec * float64(time.Second))),
		Counters: job.PerfCounters{
			// All flops via perf2 and all traffic via perf4 keeps the
			// inversion exact.
			Perf2: flops,
			Perf4: bytes * job.CoresPerCMG / job.CacheLineBytes,
		},
	}
}

func TestCharacterizeInvertsEquations(t *testing.T) {
	c := NewCharacterizer(fugakuModel())
	pt, err := c.Characterize(syntheticJob(100, 50, 600, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.Performance-100) > 1e-6 {
		t.Errorf("performance = %g, want 100", pt.Performance)
	}
	if math.Abs(pt.Bandwidth-50) > 1e-6 {
		t.Errorf("bandwidth = %g, want 50", pt.Bandwidth)
	}
	if math.Abs(pt.Intensity-2) > 1e-9 {
		t.Errorf("intensity = %g, want 2", pt.Intensity)
	}
	if pt.Label != job.MemoryBound {
		t.Errorf("label = %v, want memory-bound (op 2 < ridge 3.3)", pt.Label)
	}

	pt, err = c.Characterize(syntheticJob(400, 50, 600, 4))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Label != job.ComputeBound {
		t.Errorf("label = %v, want compute-bound (op 8)", pt.Label)
	}
}

func TestCharacterizeErrors(t *testing.T) {
	c := NewCharacterizer(fugakuModel())

	j := syntheticJob(100, 50, 600, 4)
	j.EndTime = time.Time{}
	if _, err := c.Characterize(j); !errors.Is(err, ErrNotCompleted) {
		t.Errorf("missing end time: err = %v", err)
	}

	j = syntheticJob(100, 50, 600, 4)
	j.EndTime = j.StartTime
	if _, err := c.Characterize(j); !errors.Is(err, ErrZeroDuration) {
		t.Errorf("zero duration: err = %v", err)
	}

	j = syntheticJob(100, 50, 600, 4)
	j.NodesAllocated = 0
	if _, err := c.Characterize(j); !errors.Is(err, ErrZeroNodes) {
		t.Errorf("zero nodes: err = %v", err)
	}

	j = syntheticJob(100, 50, 600, 4)
	j.Counters.Perf4, j.Counters.Perf5 = 0, 0
	if _, err := c.Characterize(j); !errors.Is(err, ErrNoMemoryMoved) {
		t.Errorf("zero bytes: err = %v", err)
	}
}

func TestGenerateLabels(t *testing.T) {
	c := NewCharacterizer(fugakuModel())
	jobs := []*job.Job{
		syntheticJob(100, 50, 600, 4), // memory-bound
		syntheticJob(400, 50, 600, 4), // compute-bound
		syntheticJob(100, 50, 600, 0), // uncharacterizable
	}
	labeled, skipped, quarantined := c.GenerateLabels(jobs)
	if labeled != 2 || skipped != 1 || quarantined != 0 {
		t.Fatalf("labeled/skipped/quarantined = %d/%d/%d, want 2/1/0", labeled, skipped, quarantined)
	}
	if jobs[0].TrueLabel != job.MemoryBound || jobs[1].TrueLabel != job.ComputeBound {
		t.Errorf("labels = %v, %v", jobs[0].TrueLabel, jobs[1].TrueLabel)
	}
	if jobs[2].TrueLabel != job.Unknown {
		t.Errorf("skipped job label = %v, want unknown", jobs[2].TrueLabel)
	}
}

func TestCharacterizeNormalization(t *testing.T) {
	// Doubling nodes and keeping total counters fixed halves the
	// per-node performance but not the label-determining intensity.
	c := NewCharacterizer(fugakuModel())
	j1 := syntheticJob(200, 100, 600, 1)
	pt1, err := c.Characterize(j1)
	if err != nil {
		t.Fatal(err)
	}
	j2 := syntheticJob(200, 100, 600, 1)
	j2.NodesAllocated = 2
	pt2, err := c.Characterize(j2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt2.Performance-pt1.Performance/2) > 1e-6 {
		t.Errorf("per-node normalization broken: %g vs %g", pt2.Performance, pt1.Performance)
	}
	if math.Abs(pt2.Intensity-pt1.Intensity) > 1e-9 {
		t.Errorf("intensity changed with node count: %g vs %g", pt2.Intensity, pt1.Intensity)
	}
}

func TestClassificationMonotoneInFlops(t *testing.T) {
	// With fixed memory traffic, increasing flops can only move a job
	// from memory-bound to compute-bound, never back.
	c := NewCharacterizer(fugakuModel())
	f := func(seed uint8) bool {
		base := 1 + float64(seed)
		j := syntheticJob(base, 50, 600, 2)
		lo, _ := c.Characterize(j)
		j.Counters.Perf2 *= 1000
		hi, err := c.Characterize(j)
		if err != nil {
			return false
		}
		if lo.Label == job.ComputeBound && hi.Label == job.MemoryBound {
			return false
		}
		return hi.Intensity > lo.Intensity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharacterizeRejectsPathologicalCounters(t *testing.T) {
	c := NewCharacterizer(fugakuModel())
	cases := []struct {
		name string
		mut  func(*job.PerfCounters)
	}{
		{"nan perf2", func(p *job.PerfCounters) { p.Perf2 = math.NaN() }},
		{"inf perf4", func(p *job.PerfCounters) { p.Perf4 = math.Inf(1) }},
		{"negative perf5", func(p *job.PerfCounters) { p.Perf5 = -1 }},
		{"overflowing flops", func(p *job.PerfCounters) { p.Perf2, p.Perf3 = math.MaxFloat64, math.MaxFloat64 }},
	}
	for _, tc := range cases {
		j := syntheticJob(100, 50, 600, 4)
		tc.mut(&j.Counters)
		pt, err := c.Characterize(j)
		if !errors.Is(err, job.ErrBadCounters) {
			t.Errorf("%s: err = %v, want job.ErrBadCounters", tc.name, err)
		}
		if pt != (Point{}) {
			t.Errorf("%s: returned a non-zero point %+v for bad counters", tc.name, pt)
		}
	}
}

func TestGenerateLabelsQuarantinesBadCounters(t *testing.T) {
	c := NewCharacterizer(fugakuModel())
	bad := syntheticJob(100, 50, 600, 4)
	bad.Counters.Perf3 = math.NaN()
	jobs := []*job.Job{
		syntheticJob(100, 50, 600, 4), // memory-bound
		bad,                           // pathological -> quarantined
		syntheticJob(100, 50, 600, 0), // uncharacterizable -> skipped
	}
	labeled, skipped, quarantined := c.GenerateLabels(jobs)
	if labeled != 1 || skipped != 1 || quarantined != 1 {
		t.Fatalf("labeled/skipped/quarantined = %d/%d/%d, want 1/1/1", labeled, skipped, quarantined)
	}
	if bad.TrueLabel != job.Unknown {
		t.Errorf("quarantined job label = %v, want unknown (must not poison training)", bad.TrueLabel)
	}
}
