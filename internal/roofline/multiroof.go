package roofline

import (
	"fmt"
	"sort"

	"mcbound/internal/job"
)

// This file implements the extension sketched in §III-C of the paper:
// "by adding to the Roofline model the bandwidth of other hardware
// components (e.g. cache, interconnect and GPUs) it is possible to
// expand the Job Characterizer to create other labels for the job data,
// such as interconnect-bound and GPU-bound."
//
// A MultiModel holds one compute roof plus any number of named bandwidth
// roofs, each paired with a traffic extractor. A job is bound by the
// resource whose roof it utilizes the most: utilization is the ratio of
// the achieved rate (traffic / node-seconds) to that roof's peak, with
// the compute roof measured in flops. This reduces to the classic
// two-way model when only the memory roof is present.

// Roof is one named bandwidth ceiling of the machine.
type Roof struct {
	// Name labels the binding resource ("memory", "interconnect", ...).
	Name string
	// PeakGBs is the per-node peak rate of the resource in GByte/s.
	PeakGBs float64
	// Traffic extracts the job's total bytes moved through this
	// resource from its record.
	Traffic func(j *job.Job) float64
}

// MultiModel is a Roofline with several bandwidth ceilings.
type MultiModel struct {
	PeakGFlops float64
	Roofs      []Roof
}

// NewMultiModel validates and builds a multi-roof model.
func NewMultiModel(peakGFlops float64, roofs []Roof) (*MultiModel, error) {
	if peakGFlops <= 0 {
		return nil, fmt.Errorf("roofline: peak performance must be positive, got %g", peakGFlops)
	}
	if len(roofs) == 0 {
		return nil, fmt.Errorf("roofline: at least one bandwidth roof is required")
	}
	seen := map[string]bool{}
	for i, r := range roofs {
		if r.Name == "" || r.PeakGBs <= 0 || r.Traffic == nil {
			return nil, fmt.Errorf("roofline: roof %d is incomplete", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("roofline: duplicate roof %q", r.Name)
		}
		seen[r.Name] = true
	}
	return &MultiModel{PeakGFlops: peakGFlops, Roofs: roofs}, nil
}

// FugakuMultiModel returns the Fugaku node with both its HBM2 memory
// roof and its Tofu-D interconnect roof (28 Gbit/s injection per node ≈
// 3.5 GByte/s, paper Table I).
func FugakuMultiModel() *MultiModel {
	spec := job.FugakuSpec()
	m, err := NewMultiModel(spec.PeakGFlops, []Roof{
		{
			Name:    "memory",
			PeakGBs: spec.PeakMemBWGBs,
			Traffic: func(j *job.Job) float64 { return j.Counters.MovedBytes() },
		},
		{
			Name:    "interconnect",
			PeakGBs: spec.InterconnectGbps / 8,
			Traffic: func(j *job.Job) float64 { return j.Counters.TofuBytes },
		},
	})
	if err != nil {
		panic("roofline: invalid built-in Fugaku multi-model: " + err.Error())
	}
	return m
}

// Utilization is one resource's share of its roof for a job.
type Utilization struct {
	Resource string  // roof name, or "compute"
	Achieved float64 // achieved rate (GFlop/s or GByte/s per node)
	Peak     float64
	Fraction float64 // Achieved / Peak
}

// BoundBy characterizes a completed job against every roof and returns
// the utilizations sorted descending by fraction; the first entry is the
// binding resource. Roofs with zero recorded traffic are reported with
// zero utilization (a job that never touches the interconnect cannot be
// interconnect-bound).
func (m *MultiModel) BoundBy(j *job.Job) ([]Utilization, error) {
	if j.EndTime.IsZero() || j.StartTime.IsZero() {
		return nil, fmt.Errorf("%w: job %s", ErrNotCompleted, j.ID)
	}
	dur := j.Duration().Seconds()
	if dur <= 0 {
		return nil, fmt.Errorf("%w: job %s", ErrZeroDuration, j.ID)
	}
	nodes := float64(j.NodesAllocated)
	if nodes <= 0 {
		return nil, fmt.Errorf("%w: job %s", ErrZeroNodes, j.ID)
	}
	nodeSec := dur * nodes

	out := make([]Utilization, 0, len(m.Roofs)+1)
	perfGF := j.Counters.Flops() / nodeSec / 1e9
	out = append(out, Utilization{
		Resource: "compute",
		Achieved: perfGF,
		Peak:     m.PeakGFlops,
		Fraction: perfGF / m.PeakGFlops,
	})
	for _, r := range m.Roofs {
		bw := r.Traffic(j) / nodeSec / 1e9
		out = append(out, Utilization{
			Resource: r.Name,
			Achieved: bw,
			Peak:     r.PeakGBs,
			Fraction: bw / r.PeakGBs,
		})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Fraction > out[b].Fraction })
	return out, nil
}

// BindingResource returns just the name of the dominating resource.
func (m *MultiModel) BindingResource(j *job.Job) (string, error) {
	utils, err := m.BoundBy(j)
	if err != nil {
		return "", err
	}
	return utils[0].Resource, nil
}
