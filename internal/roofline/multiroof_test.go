package roofline

import (
	"testing"

	"mcbound/internal/job"
)

func TestNewMultiModelValidation(t *testing.T) {
	traffic := func(j *job.Job) float64 { return 1 }
	if _, err := NewMultiModel(0, []Roof{{Name: "m", PeakGBs: 1, Traffic: traffic}}); err == nil {
		t.Error("accepted zero peak")
	}
	if _, err := NewMultiModel(100, nil); err == nil {
		t.Error("accepted no roofs")
	}
	if _, err := NewMultiModel(100, []Roof{{Name: "", PeakGBs: 1, Traffic: traffic}}); err == nil {
		t.Error("accepted unnamed roof")
	}
	if _, err := NewMultiModel(100, []Roof{{Name: "m", PeakGBs: 1, Traffic: nil}}); err == nil {
		t.Error("accepted roof without traffic extractor")
	}
	dup := []Roof{
		{Name: "m", PeakGBs: 1, Traffic: traffic},
		{Name: "m", PeakGBs: 2, Traffic: traffic},
	}
	if _, err := NewMultiModel(100, dup); err == nil {
		t.Error("accepted duplicate roof names")
	}
}

func TestBoundByClassifiesAllThreeWays(t *testing.T) {
	m := FugakuMultiModel()

	// Memory-hog: high bandwidth, low flops, no communication.
	memJob := syntheticJob(100, 600, 1800, 2) // 600 GB/s of 1024
	got, err := m.BindingResource(memJob)
	if err != nil {
		t.Fatal(err)
	}
	if got != "memory" {
		t.Errorf("memory-hog bound by %q", got)
	}

	// Compute-hog: near-peak flops, light traffic.
	compJob := syntheticJob(3000, 50, 1800, 2) // 3000 of 3380 GFlop/s
	if got, _ = m.BindingResource(compJob); got != "compute" {
		t.Errorf("compute-hog bound by %q", got)
	}

	// Communication-hog: light on flops and memory, saturating Tofu.
	commJob := syntheticJob(30, 40, 1800, 4)
	commJob.Counters.TofuBytes = 3.0 * 1e9 * 1800 * 4 // 3.0 of 3.5 GB/s per node
	if got, _ = m.BindingResource(commJob); got != "interconnect" {
		t.Errorf("communication-hog bound by %q", got)
	}
}

func TestBoundByOrderingAndFractions(t *testing.T) {
	m := FugakuMultiModel()
	j := syntheticJob(338, 102.4, 1800, 1) // 10% of both roofs
	utils, err := m.BoundBy(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(utils) != 3 {
		t.Fatalf("got %d utilizations", len(utils))
	}
	for i := 1; i < len(utils); i++ {
		if utils[i].Fraction > utils[i-1].Fraction {
			t.Error("utilizations not sorted descending")
		}
	}
	for _, u := range utils {
		if u.Fraction < 0 || u.Peak <= 0 {
			t.Errorf("bad utilization %+v", u)
		}
	}
	// No interconnect traffic recorded ⇒ its utilization must be zero
	// and it must sort last.
	if utils[len(utils)-1].Resource != "interconnect" || utils[len(utils)-1].Fraction != 0 {
		t.Errorf("idle interconnect not last/zero: %+v", utils[len(utils)-1])
	}
}

func TestBoundByErrors(t *testing.T) {
	m := FugakuMultiModel()
	j := syntheticJob(100, 50, 1800, 1)
	j.EndTime = j.StartTime
	if _, err := m.BoundBy(j); err == nil {
		t.Error("accepted zero duration")
	}
	j = syntheticJob(100, 50, 1800, 1)
	j.NodesAllocated = 0
	if _, err := m.BoundBy(j); err == nil {
		t.Error("accepted zero nodes")
	}
}

func TestMultiModelAgreesWithTwoWayModel(t *testing.T) {
	// With no interconnect traffic, the dominating roof of the
	// multi-model must match the classic ridge-point classification.
	m := FugakuMultiModel()
	c := NewCharacterizer(ModelFor(job.FugakuSpec()))
	cases := []struct {
		perfGF, bwGB float64
	}{
		{50, 100},  // op 0.5, memory-bound
		{1000, 10}, // op 100, compute-bound
		{500, 400}, // op 1.25, memory-bound
	}
	for _, tc := range cases {
		j := syntheticJob(tc.perfGF, tc.bwGB, 1800, 2)
		pt, err := c.Characterize(j)
		if err != nil {
			t.Fatal(err)
		}
		binding, err := m.BindingResource(j)
		if err != nil {
			t.Fatal(err)
		}
		wantBinding := "memory"
		if pt.Label == job.ComputeBound {
			wantBinding = "compute"
		}
		if binding != wantBinding {
			t.Errorf("perf %g bw %g: two-way %v vs multi-roof %q",
				tc.perfGF, tc.bwGB, pt.Label, binding)
		}
	}
}
