package roofline

import (
	"testing"

	"mcbound/internal/job"
)

// BenchmarkCharacterize measures the per-job labelling cost the paper
// reports as ≈1 µs/job.
func BenchmarkCharacterize(b *testing.B) {
	c := NewCharacterizer(ModelFor(job.FugakuSpec()))
	j := syntheticJob(120, 60, 1800, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Characterize(j); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateLabels measures the batch path the Training Workflow
// takes over an α-day window.
func BenchmarkGenerateLabels(b *testing.B) {
	c := NewCharacterizer(ModelFor(job.FugakuSpec()))
	jobs := make([]*job.Job, 10000)
	for i := range jobs {
		jobs[i] = syntheticJob(float64(10+i%500), 60, 1800, 1+i%8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labeled, _, _ := c.GenerateLabels(jobs)
		if labeled == 0 {
			b.Fatal("nothing labeled")
		}
	}
}
