// Package roofline implements the Roofline performance model (Williams et
// al., 2009) and the MCBound Job Characterizer built on it: the systematic
// technique that turns per-job performance counters into
// memory-bound/compute-bound ground-truth labels (paper §III-C and §IV-B).
package roofline

import (
	"errors"
	"fmt"

	"mcbound/internal/job"
)

// Model is a single-node Roofline: peak floating-point performance and
// peak memory bandwidth define a ridge point in the (operational
// intensity, performance) plane.
type Model struct {
	PeakGFlops   float64 // per-node peak FP64 performance, GFlop/s
	PeakMemBWGBs float64 // per-node peak memory bandwidth, GByte/s
}

// NewModel validates and builds a Roofline model.
func NewModel(peakGFlops, peakMemBW float64) (Model, error) {
	if peakGFlops <= 0 || peakMemBW <= 0 {
		return Model{}, fmt.Errorf("roofline: peaks must be positive, got %g GFlop/s, %g GB/s", peakGFlops, peakMemBW)
	}
	return Model{PeakGFlops: peakGFlops, PeakMemBWGBs: peakMemBW}, nil
}

// ModelFor builds the Roofline of a single node of the given machine.
func ModelFor(spec job.MachineSpec) Model {
	return Model{PeakGFlops: spec.PeakGFlops, PeakMemBWGBs: spec.PeakMemBWGBs}
}

// RidgePoint returns the operational intensity op_r (Flops/Byte) at which
// the bandwidth roof meets the compute roof: the minimum intensity needed
// to attain peak performance.
func (m Model) RidgePoint() float64 { return m.PeakGFlops / m.PeakMemBWGBs }

// Attainable returns the attainable performance in GFlop/s at operational
// intensity op: min(peak, op * bandwidth). This is the roof itself.
func (m Model) Attainable(op float64) float64 {
	bw := op * m.PeakMemBWGBs
	if bw < m.PeakGFlops {
		return bw
	}
	return m.PeakGFlops
}

// Classify labels an operational intensity against the ridge point:
// compute-bound strictly above it, memory-bound otherwise (the paper's
// generate_labels rule).
func (m Model) Classify(op float64) job.Label {
	if op > m.RidgePoint() {
		return job.ComputeBound
	}
	return job.MemoryBound
}

// Point is a job's position in the Roofline plane, all values normalized
// per node per second.
type Point struct {
	Performance float64 // p_j, GFlop/s per node (Eq. 1)
	Bandwidth   float64 // mb_j, GByte/s per node (Eq. 2)
	Intensity   float64 // op_j = p_j / mb_j, Flops/Byte (Eq. 3)
	Label       job.Label
}

// Characterizer is the MCBound Job Characterizer component: initialized
// with the per-node peaks of the machine, it derives the
// memory/compute-bound label of completed jobs from their execution
// statistics and performance counters.
type Characterizer struct {
	model Model
	ridge float64
}

// Errors returned by the Characterizer for jobs whose execution data
// cannot support a Roofline position.
var (
	ErrNotCompleted  = errors.New("roofline: job has no execution data (not completed)")
	ErrZeroDuration  = errors.New("roofline: job duration is zero")
	ErrZeroNodes     = errors.New("roofline: job has zero allocated nodes")
	ErrNoMemoryMoved = errors.New("roofline: job moved zero memory bytes")
)

// NewCharacterizer builds a Characterizer from a Roofline model.
func NewCharacterizer(m Model) *Characterizer {
	return &Characterizer{model: m, ridge: m.RidgePoint()}
}

// Model returns the underlying Roofline model.
func (c *Characterizer) Model() Model { return c.model }

// RidgePoint returns op_r computed at initialization time.
func (c *Characterizer) RidgePoint() float64 { return c.ridge }

// Characterize computes the Roofline point of a completed job:
//
//	p_j  = #flops_j / (duration_j * #nodes_alloc_j)          (Eq. 1)
//	mb_j = #moved_bytes_j / (duration_j * #nodes_alloc_j)    (Eq. 2)
//	op_j = p_j / mb_j                                        (Eq. 3)
//
// with #flops and #moved_bytes derived from the PMU counters via Eq. 4/5.
// Values are expressed in GFlop/s and GByte/s to match the model peaks.
func (c *Characterizer) Characterize(j *job.Job) (Point, error) {
	if j.EndTime.IsZero() || j.StartTime.IsZero() {
		return Point{}, fmt.Errorf("%w: job %s", ErrNotCompleted, j.ID)
	}
	dur := j.Duration().Seconds()
	if dur <= 0 {
		return Point{}, fmt.Errorf("%w: job %s", ErrZeroDuration, j.ID)
	}
	nodes := float64(j.NodesAllocated)
	if nodes <= 0 {
		return Point{}, fmt.Errorf("%w: job %s", ErrZeroNodes, j.ID)
	}
	if err := j.Counters.Validate(); err != nil {
		return Point{}, fmt.Errorf("roofline: job %s: %w", j.ID, err)
	}
	flops := j.Counters.Flops()
	bytes := j.Counters.MovedBytes()
	if bytes <= 0 {
		return Point{}, fmt.Errorf("%w: job %s", ErrNoMemoryMoved, j.ID)
	}
	nodeSec := dur * nodes
	p := Point{
		Performance: flops / nodeSec / 1e9, // GFlop/s per node
		Bandwidth:   bytes / nodeSec / 1e9, // GByte/s per node
	}
	p.Intensity = p.Performance / p.Bandwidth
	p.Label = c.model.Classify(p.Intensity)
	return p, nil
}

// GenerateLabels characterizes every job in jobs, writing the label into
// Job.TrueLabel. Jobs that cannot be characterized keep label Unknown:
// structurally incomplete ones (no execution data, zero duration/nodes,
// no memory moved) count in skipped, while jobs with pathological
// counters (NaN/Inf/negative, job.ErrBadCounters) count in quarantined —
// the latter indicate trace corruption and are surfaced separately so
// operators can spot a poisoned window. This is the batch API the
// Training Workflow invokes to build its reference dataset.
func (c *Characterizer) GenerateLabels(jobs []*job.Job) (labeled, skipped, quarantined int) {
	for _, j := range jobs {
		pt, err := c.Characterize(j)
		if err != nil {
			j.TrueLabel = job.Unknown
			if errors.Is(err, job.ErrBadCounters) {
				quarantined++
			} else {
				skipped++
			}
			continue
		}
		j.TrueLabel = pt.Label
		labeled++
	}
	return labeled, skipped, quarantined
}
