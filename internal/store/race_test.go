package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mcbound/internal/job"
)

// TestExecutedBetweenRaceWithInsert hammers the completion index from
// both sides: writers keep inserting completed jobs (invalidating the
// sorted snapshot) while readers binary-search it. Before the immutable
// snapshot rewrite, ensureSorted re-sorted the same backing array a
// reader was searching, which -race flags and which could return jobs
// out of range. Run with -race.
func TestExecutedBetweenRaceWithInsert(t *testing.T) {
	s := New()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				end := base.Add(time.Duration(i%500) * time.Minute)
				j := &job.Job{
					ID:         fmt.Sprintf("w%d-%d", w, i),
					SubmitTime: end.Add(-time.Hour),
					StartTime:  end.Add(-30 * time.Minute),
					EndTime:    end,
				}
				if err := s.Insert(j); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	lo, hi := base.Add(100*time.Minute), base.Add(400*time.Minute)
	for time.Now().Before(deadline) {
		for _, got := range s.ExecutedBetween(lo, hi) {
			if got.EndTime.Before(lo) || !got.EndTime.Before(hi) {
				t.Fatalf("job %s outside [%v,%v): %v", got.ID, lo, hi, got.EndTime)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestInsertCopiesRecord pins the clone-on-insert contract: mutating the
// caller's Job after Insert must not reach the store.
func TestInsertCopiesRecord(t *testing.T) {
	s := New()
	j := &job.Job{ID: "a", SubmitTime: time.Now()}
	if err := s.Insert(j); err != nil {
		t.Fatal(err)
	}
	j.ID = "mutated"
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "a" {
		t.Fatalf("stored job mutated through caller pointer: %q", got.ID)
	}
}

// TestReinsertOrderStable checks that replacing an already-completed job
// keeps the completion index consistent (the old record must not linger
// next to the new one).
func TestReinsertOrderStable(t *testing.T) {
	s := New()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		end := base.Add(time.Duration(i) * time.Hour)
		if err := s.Insert(&job.Job{ID: fmt.Sprintf("j%d", i), EndTime: end}); err != nil {
			t.Fatal(err)
		}
	}
	// Move j3's completion to the end of the range.
	if err := s.Insert(&job.Job{ID: "j3", EndTime: base.Add(20 * time.Hour)}); err != nil {
		t.Fatal(err)
	}
	got := s.ExecutedBetween(base, base.Add(48*time.Hour))
	if len(got) != 10 {
		t.Fatalf("index has %d entries, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].EndTime.Before(got[i-1].EndTime) {
			t.Fatalf("index out of order at %d", i)
		}
	}
	if got[len(got)-1].ID != "j3" {
		t.Fatalf("last entry %s, want the re-inserted j3", got[len(got)-1].ID)
	}
}
