package store

import (
	"fmt"
	"testing"
	"time"

	"mcbound/internal/job"
)

// pageJob builds a minimal job with controllable submit/end keys.
func pageJob(id string, submit, end time.Time) *job.Job {
	return &job.Job{ID: id, User: "u", SubmitTime: submit, StartTime: submit, EndTime: end}
}

func TestSubmittedPageWalk(t *testing.T) {
	st := New()
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	var want []string
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%02d", i)
		// Two jobs share each submit instant, so the ID tiebreak is
		// exercised on every page boundary.
		submit := base.Add(time.Duration(i/2) * time.Hour)
		if err := st.Insert(pageJob(id, submit, submit.Add(time.Minute))); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}

	var got []string
	after := Pos{}
	for {
		items, more := st.SubmittedPage(base, base.AddDate(0, 0, 1), after, 3)
		for _, j := range items {
			got = append(got, j.ID)
		}
		if !more {
			break
		}
		last := items[len(items)-1]
		after = Pos{Time: last.SubmitTime, ID: last.ID}
	}
	if len(got) != len(want) {
		t.Fatalf("walked %d jobs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page walk order diverged at %d: got %v", i, got)
		}
	}

	// Range bounds are honored.
	items, more := st.SubmittedPage(base.Add(time.Hour), base.Add(3*time.Hour), Pos{}, 0)
	if len(items) != 4 || more {
		t.Fatalf("bounded page = %d items (more=%t), want 4", len(items), more)
	}
}

// TestSubmittedPageStableUnderInsert is the cursor guarantee offset
// pagination cannot give: records present for the whole walk are seen
// exactly once even when new records land between page fetches —
// including records inserted *before* the reader's current position.
func TestSubmittedPageStableUnderInsert(t *testing.T) {
	st := New()
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	end := base.AddDate(0, 0, 1)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("orig%02d", i)
		if err := st.Insert(pageJob(id, base.Add(time.Duration(i)*time.Minute), time.Time{})); err != nil {
			t.Fatal(err)
		}
	}

	seen := map[string]int{}
	after := Pos{}
	page := 0
	for {
		items, more := st.SubmittedPage(base, end, after, 4)
		for _, j := range items {
			seen[j.ID]++
		}
		// Concurrent writer: one insert behind the cursor, one ahead,
		// between every pair of page reads.
		if err := st.Insert(pageJob(fmt.Sprintf("early%02d", page), base.Add(time.Second), time.Time{})); err != nil {
			t.Fatal(err)
		}
		if err := st.Insert(pageJob(fmt.Sprintf("late%02d", page), base.Add(25*time.Minute), time.Time{})); err != nil {
			t.Fatal(err)
		}
		page++
		if !more {
			break
		}
		last := items[len(items)-1]
		after = Pos{Time: last.SubmitTime, ID: last.ID}
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("orig%02d", i)
		if seen[id] != 1 {
			t.Errorf("job %s seen %d times, want exactly once", id, seen[id])
		}
	}
	if page < 5 {
		t.Fatalf("walk finished in %d pages; the insert interleaving never ran", page)
	}
}

func TestExecutedPage(t *testing.T) {
	st := New()
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("e%02d", i)
		end := time.Time{}
		if i%2 == 0 { // only even jobs completed
			end = base.Add(time.Duration(i) * time.Hour)
		}
		if err := st.Insert(pageJob(id, base, end)); err != nil {
			t.Fatal(err)
		}
	}
	items, more := st.ExecutedPage(base, base.AddDate(0, 0, 1), Pos{}, 2)
	if len(items) != 2 || !more {
		t.Fatalf("first page = %d items (more=%t), want 2 with more", len(items), more)
	}
	if items[0].ID != "e00" || items[1].ID != "e02" {
		t.Fatalf("first page = %s,%s", items[0].ID, items[1].ID)
	}
	last := items[1]
	items, more = st.ExecutedPage(base, base.AddDate(0, 0, 1), Pos{Time: last.EndTime, ID: last.ID}, 2)
	if len(items) != 1 || more {
		t.Fatalf("second page = %d items (more=%t), want 1 final", len(items), more)
	}
	if items[0].ID != "e04" {
		t.Fatalf("second page = %s, want e04", items[0].ID)
	}
}
