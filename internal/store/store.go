// Package store implements the jobs data storage MCBound requires from
// the host system: an indexed repository of job records answering the two
// query shapes the Data Fetcher issues — lookup by job id and scan by
// execution-time range. It stands in for Fugaku's relational database and
// supports concurrent readers with streaming inserts, plus JSONL
// persistence for offline exchange.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/wal"
)

// ErrNotFound is the sentinel wrapped by lookups for absent job IDs;
// callers branch with errors.Is (the HTTP layer maps it to 404).
var ErrNotFound = errors.New("job not found")

// Store is an in-memory, mutex-guarded job repository. Jobs are indexed
// by ID and kept ordered by EndTime for range scans (the Training
// Workflow queries by completion interval, matching the paper's
// fetch(start_time, end_time)).
//
// Insert copies the record, so callers may reuse or mutate their Job
// after the call. Reads return the store's own pointers: mutating a
// fetched job (as the labeling path does with TrueLabel) is visible to
// later readers of the same record, but a later Insert of the same ID
// replaces the stored pointer rather than updating it in place.
type Store struct {
	mu   sync.RWMutex
	byID map[string]*job.Job
	// byEnd is an immutable snapshot of the completed jobs sorted by
	// (EndTime, ID), rebuilt on demand. Writers that change the
	// completion set invalidate it by setting it nil; readers either
	// grab the current snapshot (never mutated after publication) or
	// rebuild under the write lock. This keeps range scans off the
	// write path without the sort-under-reader race of an in-place
	// index. bySubmit is the same idea over every job, sorted by
	// (SubmitTime, ID) — the keyset the cursor page scans walk.
	byEnd    []*job.Job
	bySubmit []*job.Job
}

// New returns an empty Store.
func New() *Store {
	return &Store{byID: make(map[string]*job.Job)}
}

// Insert adds copies of the given jobs to the store. Inserting a job
// whose ID already exists replaces the previous record (job records are
// updated when execution completes and counters arrive).
func (s *Store) Insert(jobs ...*job.Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		if j.ID == "" {
			return fmt.Errorf("store: job with empty id")
		}
		cp := *j
		old, existed := s.byID[cp.ID]
		s.byID[cp.ID] = &cp
		// The snapshot stays valid unless the completion set changed:
		// a completed record arrived, or a completed one was replaced.
		if !cp.EndTime.IsZero() || (existed && !old.EndTime.IsZero()) {
			s.byEnd = nil
		}
		// Every insert perturbs the submission keyset.
		s.bySubmit = nil
	}
	return nil
}

// Len returns the number of stored jobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Get returns the job with the given ID, or an error if absent.
func (s *Store) Get(id string) (*job.Job, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("store: job %q: %w", id, ErrNotFound)
	}
	return j, nil
}

// executedIndex returns the current completion snapshot, rebuilding it
// under the write lock when an insert has invalidated it. The returned
// slice is never mutated afterwards, so callers may search it unlocked.
func (s *Store) executedIndex() []*job.Job {
	s.mu.RLock()
	idx := s.byEnd
	s.mu.RUnlock()
	if idx != nil {
		return idx
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byEnd != nil { // another writer rebuilt it first
		return s.byEnd
	}
	idx = make([]*job.Job, 0, len(s.byID))
	for _, j := range s.byID {
		if !j.EndTime.IsZero() {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(i, k int) bool {
		if idx[i].EndTime.Equal(idx[k].EndTime) {
			return idx[i].ID < idx[k].ID
		}
		return idx[i].EndTime.Before(idx[k].EndTime)
	})
	s.byEnd = idx
	return idx
}

// submittedIndex returns the current submission snapshot (every job
// sorted by (SubmitTime, ID)), rebuilding it under the write lock when
// an insert has invalidated it. The returned slice is never mutated
// afterwards, so callers may search it unlocked.
func (s *Store) submittedIndex() []*job.Job {
	s.mu.RLock()
	idx := s.bySubmit
	s.mu.RUnlock()
	if idx != nil {
		return idx
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bySubmit != nil { // another writer rebuilt it first
		return s.bySubmit
	}
	idx = make([]*job.Job, 0, len(s.byID))
	for _, j := range s.byID {
		idx = append(idx, j)
	}
	sort.Slice(idx, func(i, k int) bool {
		if idx[i].SubmitTime.Equal(idx[k].SubmitTime) {
			return idx[i].ID < idx[k].ID
		}
		return idx[i].SubmitTime.Before(idx[k].SubmitTime)
	})
	s.bySubmit = idx
	return idx
}

// Pos is a keyset position in a (time, id)-ordered scan: the sort key
// of the last record a reader has consumed. The zero value means
// "before everything". Which time field orders the scan depends on the
// method the position is passed to (SubmitTime for SubmittedPage,
// EndTime for ExecutedPage).
type Pos struct {
	Time time.Time
	ID   string
}

// IsZero reports whether the position is the before-everything marker.
func (p Pos) IsZero() bool { return p.Time.IsZero() && p.ID == "" }

// less orders positions the way the snapshot indexes do.
func (p Pos) less(t time.Time, id string) bool {
	if p.Time.Equal(t) {
		return p.ID < id
	}
	return p.Time.Before(t)
}

// pageAfter slices one keyset page out of a (time, id)-sorted index:
// records strictly after `after`, with key(j) in [start, end), at most
// limit of them (limit <= 0 means no cap). more reports whether the
// range holds records beyond the returned page. Because the position
// names a concrete (time, id) key rather than a count, concurrent
// inserts before the position can neither duplicate nor skip records
// for a reader walking pages — the offset-pagination failure mode.
func pageAfter(idx []*job.Job, key func(*job.Job) time.Time, start, end time.Time, after Pos, limit int) (items []*job.Job, more bool) {
	lo := sort.Search(len(idx), func(i int) bool { return !key(idx[i]).Before(start) })
	if !after.IsZero() {
		// First record strictly after the cursor position.
		cut := sort.Search(len(idx), func(i int) bool { return after.less(key(idx[i]), idx[i].ID) })
		if cut > lo {
			lo = cut
		}
	}
	hi := sort.Search(len(idx), func(i int) bool { return !key(idx[i]).Before(end) })
	if lo >= hi {
		return []*job.Job{}, false
	}
	stop := hi
	if limit > 0 && lo+limit < hi {
		stop = lo + limit
		more = true
	}
	items = make([]*job.Job, stop-lo)
	copy(items, idx[lo:stop])
	return items, more
}

// SubmittedPage returns up to limit jobs with SubmitTime in
// [start, end) whose (SubmitTime, ID) key lies strictly after the
// given position, in key order. A zero Pos starts at the beginning of
// the range. more reports whether another page exists. This is the
// resumable scan behind the v1 cursor API.
func (s *Store) SubmittedPage(start, end time.Time, after Pos, limit int) (items []*job.Job, more bool) {
	return pageAfter(s.submittedIndex(), func(j *job.Job) time.Time { return j.SubmitTime },
		start, end, after, limit)
}

// ExecutedPage is SubmittedPage over the completion keyset: jobs with
// EndTime in [start, end) strictly after the (EndTime, ID) position.
func (s *Store) ExecutedPage(start, end time.Time, after Pos, limit int) (items []*job.Job, more bool) {
	return pageAfter(s.executedIndex(), func(j *job.Job) time.Time { return j.EndTime },
		start, end, after, limit)
}

// ExecutedBetween returns all jobs whose EndTime lies in [start, end),
// ordered by completion time. This is the query the Training Workflow
// issues for its α-day window.
func (s *Store) ExecutedBetween(start, end time.Time) []*job.Job {
	idx := s.executedIndex()
	lo := sort.Search(len(idx), func(i int) bool { return !idx[i].EndTime.Before(start) })
	hi := sort.Search(len(idx), func(i int) bool { return !idx[i].EndTime.Before(end) })
	out := make([]*job.Job, hi-lo)
	copy(out, idx[lo:hi])
	return out
}

// SubmittedBetween returns all jobs whose SubmitTime lies in [start, end),
// ordered by submission time. The Inference Workflow uses it to collect
// the jobs accumulated since its last trigger.
func (s *Store) SubmittedBetween(start, end time.Time) []*job.Job {
	idx := s.submittedIndex()
	lo := sort.Search(len(idx), func(i int) bool { return !idx[i].SubmitTime.Before(start) })
	hi := sort.Search(len(idx), func(i int) bool { return !idx[i].SubmitTime.Before(end) })
	out := make([]*job.Job, hi-lo)
	copy(out, idx[lo:hi])
	return out
}

// All returns every job ordered by submission time.
func (s *Store) All() []*job.Job {
	idx := s.submittedIndex()
	out := make([]*job.Job, len(idx))
	copy(out, idx)
	return out
}

// WriteJSONL streams every job to w as one JSON object per line, in
// submission order.
func (s *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for _, j := range s.All() {
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("store: encode job %s: %w", j.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads jobs from a JSONL stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) (*Store, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		var j job.Job
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
		if err := s.Insert(&j); err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return s, nil
}

// SaveFile persists the store to path as JSONL. The write is
// crash-safe: the data lands in a temp file that is fsynced, renamed
// over path, and sealed with a directory fsync, so a crash leaves
// either the old file or the new one — never a torn mix.
func (s *Store) SaveFile(path string) error {
	return wal.WriteStreamAtomic(wal.OS, path, s.WriteJSONL)
}

// LoadFile reads a JSONL store from path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
