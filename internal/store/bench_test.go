package store

import (
	"fmt"
	"testing"
	"time"
)

func benchStore(n int) *Store {
	s := New()
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		_ = s.Insert(mkJob(fmt.Sprintf("b%06d", i), base.Add(time.Duration(i)*time.Minute), 30))
	}
	return s
}

// BenchmarkInsert measures ingest throughput.
func BenchmarkInsert(b *testing.B) {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Insert(mkJob(fmt.Sprintf("b%09d", i), base, 30)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutedBetween measures the α-window range scan the
// Training Workflow issues (binary search over the completion index).
func BenchmarkExecutedBetween(b *testing.B) {
	s := benchStore(100000)
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	s.ExecutedBetween(base, base) // force the one-time sort
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := s.ExecutedBetween(base.Add(24*time.Hour), base.Add(48*time.Hour))
		if len(got) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkSubmittedBetween measures the inference-trigger query.
func BenchmarkSubmittedBetween(b *testing.B) {
	s := benchStore(100000)
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got := s.SubmittedBetween(base.Add(24*time.Hour), base.Add(25*time.Hour))
		if len(got) == 0 {
			b.Fatal("empty window")
		}
	}
}
