package store

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/wal"
	"mcbound/internal/wal/crashfs"
)

func durJob(i int) *job.Job {
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	end := base.Add(time.Duration(i) * time.Minute)
	return &job.Job{
		ID:         fmt.Sprintf("job-%05d", i),
		User:       "u1",
		Name:       "bench",
		SubmitTime: end.Add(-time.Hour),
		StartTime:  end.Add(-30 * time.Minute),
		EndTime:    end,
	}
}

func TestDurableInsertReplay(t *testing.T) {
	fs := crashfs.New(1)
	d, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := d.Insert(durJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := d2.Store().Len(); n != 40 {
		t.Fatalf("replayed %d jobs, want 40", n)
	}
	if d2.Recovery().Outcome() != "clean" {
		t.Fatalf("outcome %s, want clean", d2.Recovery().Outcome())
	}
}

func TestDurableSeedBecomesSnapshot(t *testing.T) {
	seed := New()
	for i := 0; i < 25; i++ {
		if err := seed.Insert(durJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	fs := crashfs.New(2)
	d, err := OpenDurable("data", seed, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Store().Len(); n != 25 {
		t.Fatalf("seeded store has %d jobs, want 25", n)
	}
	d.Close()
	fs.Crash()

	d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := d2.Store().Len(); n != 25 {
		t.Fatalf("after crash: %d jobs, want the 25 seeded", n)
	}
	if d2.Recovery().SnapshotRecords != 25 {
		t.Fatalf("snapshot records %d, want 25", d2.Recovery().SnapshotRecords)
	}
}

// TestDurableSnapshotRoundTripBitIdentical drives the full snapshot →
// rotate → compact → recover cycle and requires the recovered store to
// serialize to the exact same bytes as the original.
func TestDurableSnapshotRoundTripBitIdentical(t *testing.T) {
	fs := crashfs.New(3)
	d, err := OpenDurable("data", nil, DurableOptions{
		FS: fs, Policy: wal.FsyncAlways, SegmentBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := d.Insert(durJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 120; i++ { // spans several 2 KiB segments
		if err := d.Insert(durJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if err := d.Store().WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var got bytes.Buffer
	if err := d2.Store().WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("recovered state differs: %d vs %d bytes", got.Len(), want.Len())
	}
	if rec := d2.Recovery(); rec.SnapshotRecords != 60 {
		t.Fatalf("snapshot records %d, want 60 (compaction did not keep the snapshot)", rec.SnapshotRecords)
	}
}

func TestDurableAutoSnapshotCountdown(t *testing.T) {
	fs := crashfs.New(4)
	d, err := OpenDurable("data", nil, DurableOptions{
		FS: fs, Policy: wal.FsyncAlways, SnapshotEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := d.Insert(durJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil { // waits for the background snapshot
		t.Fatal(err)
	}
	d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.SnapshotRecords == 0 {
		t.Fatal("countdown never produced a snapshot")
	}
	if n := d2.Store().Len(); n != 35 {
		t.Fatalf("recovered %d jobs, want 35", n)
	}
}

func TestDurableHealth(t *testing.T) {
	fs := crashfs.New(5)
	d, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Insert(durJob(0)); err != nil {
		t.Fatal(err)
	}
	h := d.Health()
	if h.Policy != "always" {
		t.Fatalf("policy %q", h.Policy)
	}
	if h.RecoveryOutcome != "clean" {
		t.Fatalf("outcome %q", h.RecoveryOutcome)
	}
	if h.Appends != 1 {
		t.Fatalf("appends %d, want 1", h.Appends)
	}
	if h.LastFsyncAgeSeconds < 0 {
		t.Fatal("fsync age negative after an fsynced append")
	}
}
