package store

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL asserts the JSONL loader's contract on arbitrary bytes:
// it never panics, and whenever it accepts an input, the loaded store
// survives a WriteJSONL → ReadJSONL round trip. (The round trip may
// merge IDs whose invalid UTF-8 was sanitised identically by the JSON
// encoder, so the reloaded store can only shrink, never grow or fail.)
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"id":"j1","user":"u1","name":"app","cores_req":48}` + "\n"))
	f.Add([]byte(`{"id":"j1"}` + "\n" + `{"id":"j2","end":"2024-01-02T00:00:00Z"}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"id":""}` + "\n"))
	f.Add([]byte("{\"id\":\"a\"}\n\n{\"id\":\"b\"}"))
	f.Add([]byte{0xff, 0xfe, '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil store without error")
		}
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			t.Fatalf("write-back of accepted input failed: %v", err)
		}
		s2, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s2.Len() > s.Len() || (s.Len() > 0 && s2.Len() == 0) {
			t.Fatalf("round trip: %d jobs became %d", s.Len(), s2.Len())
		}
	})
}
