package store

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mcbound/internal/job"
)

func mkJob(id string, submit time.Time, durMin int) *job.Job {
	j := &job.Job{
		ID:             id,
		User:           "u0001",
		Name:           "test_job",
		Environment:    "gcc/12.2",
		CoresRequested: 48,
		NodesRequested: 1,
		NodesAllocated: 1,
		FreqRequested:  job.FreqNormal,
		SubmitTime:     submit,
	}
	if durMin > 0 {
		j.StartTime = submit.Add(time.Minute)
		j.EndTime = j.StartTime.Add(time.Duration(durMin) * time.Minute)
	}
	return j
}

var t0 = time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)

func TestInsertAndGet(t *testing.T) {
	s := New()
	j := mkJob("a", t0, 10)
	if err := s.Insert(j); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "a" {
		t.Errorf("got %s", got.ID)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("Get of missing id succeeded")
	}
	if err := s.Insert(&job.Job{}); err == nil {
		t.Error("Insert accepted empty id")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestInsertReplaceUpdatesIndexes(t *testing.T) {
	s := New()
	// First insert: submitted only (no end time).
	pending := mkJob("a", t0, 0)
	if err := s.Insert(pending); err != nil {
		t.Fatal(err)
	}
	if got := s.ExecutedBetween(t0, t0.AddDate(0, 1, 0)); len(got) != 0 {
		t.Fatalf("pending job appeared in executed index: %d", len(got))
	}
	// Completion record arrives: same ID, now with execution data.
	done := mkJob("a", t0, 30)
	if err := s.Insert(done); err != nil {
		t.Fatal(err)
	}
	got := s.ExecutedBetween(t0, t0.AddDate(0, 1, 0))
	if len(got) != 1 || got[0].EndTime.IsZero() {
		t.Fatalf("completed job missing from executed index")
	}
	if s.Len() != 1 {
		t.Errorf("replace grew the store: Len = %d", s.Len())
	}
}

func TestExecutedBetweenMatchesNaiveScan(t *testing.T) {
	s := New()
	var all []*job.Job
	for i := 0; i < 300; i++ {
		j := mkJob(fmt.Sprintf("j%03d", i), t0.Add(time.Duration(i*37)*time.Minute), 1+i%120)
		all = append(all, j)
		if err := s.Insert(j); err != nil {
			t.Fatal(err)
		}
	}
	f := func(aRaw, bRaw uint16) bool {
		a := t0.Add(time.Duration(aRaw%20000) * time.Minute)
		b := t0.Add(time.Duration(bRaw%20000) * time.Minute)
		if b.Before(a) {
			a, b = b, a
		}
		got := s.ExecutedBetween(a, b)
		want := 0
		for _, j := range all {
			if !j.EndTime.Before(a) && j.EndTime.Before(b) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].EndTime.Before(got[i-1].EndTime) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubmittedBetween(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		if err := s.Insert(mkJob(fmt.Sprintf("j%02d", i), t0.Add(time.Duration(i)*time.Hour), 10)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.SubmittedBetween(t0.Add(10*time.Hour), t0.Add(20*time.Hour))
	if len(got) != 10 {
		t.Fatalf("got %d jobs, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].SubmitTime.Before(got[i-1].SubmitTime) {
			t.Fatal("not ordered by submission")
		}
	}
}

func TestAllOrdering(t *testing.T) {
	s := New()
	// Same submit instant: order must fall back to ID for determinism.
	for _, id := range []string{"c", "a", "b"} {
		if err := s.Insert(mkJob(id, t0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	all := s.All()
	if all[0].ID != "a" || all[1].ID != "b" || all[2].ID != "c" {
		t.Errorf("All order: %s %s %s", all[0].ID, all[1].ID, all[2].ID)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		j := mkJob(fmt.Sprintf("j%02d", i), t0.Add(time.Duration(i)*time.Minute), 10+i)
		j.Counters = job.PerfCounters{Perf2: float64(i), Perf3: 2, Perf4: 3, Perf5: 4}
		if err := s.Insert(j); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("round trip lost jobs: %d vs %d", loaded.Len(), s.Len())
	}
	a, b := s.All(), loaded.All()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Counters != b[i].Counters || !a[i].SubmitTime.Equal(b[i].SubmitTime) {
			t.Fatalf("job %d differs after round trip", i)
		}
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"id\":\"a\"}\nnot-json\n")); err == nil {
		t.Error("ReadJSONL accepted malformed input")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := New()
	if err := s.Insert(mkJob("a", t0, 10)); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/jobs.jsonl"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Errorf("loaded %d jobs", loaded.Len())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("LoadFile of missing path succeeded")
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := mkJob(fmt.Sprintf("w%d-%03d", w, i), t0.Add(time.Duration(i)*time.Minute), 5)
				if err := s.Insert(j); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.ExecutedBetween(t0, t0.Add(100*time.Hour))
				s.SubmittedBetween(t0, t0.Add(100*time.Hour))
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}
