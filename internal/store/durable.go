package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/wal"
)

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// SegmentBytes, Policy, Interval, FS and AppendObserver pass through
	// to the WAL (see wal.Options).
	SegmentBytes   int64
	Policy         wal.Policy
	Interval       time.Duration
	FS             wal.FS
	AppendObserver func(seconds float64)
	// SnapshotEvery triggers a background snapshot+compaction after this
	// many records were logged since the last one; <= 0 disables
	// automatic snapshots (Snapshot can still be called explicitly).
	SnapshotEvery int
	// BumpEpoch durably increments the replication fencing epoch before
	// the log accepts writes (the -promote-on-start escape hatch).
	BumpEpoch bool
}

// Durable wraps a Store with a write-ahead log: Insert returns only
// after the records reached the configured durability point, and
// OpenDurable rebuilds the exact acknowledged state from the latest
// snapshot plus the log tail. Reads go straight to Store — the WAL sits
// on the write path only.
type Durable struct {
	s   *Store
	wal *wal.WAL

	// mu serializes "reserve log position + apply to memory" so replay
	// order is identical to apply order. Commit (the fsync wait) happens
	// outside it, so concurrent inserts still group-commit.
	mu sync.Mutex

	observer  func(float64)
	snapEvery int
	sinceSnap atomic.Int64
	snapping  atomic.Bool
	wg        sync.WaitGroup

	recovery    wal.Recovery
	lastSnapErr atomic.Value // string
}

// OpenDurable replays the durable state under dir into a fresh Store
// and returns the write-through handle. When the directory holds no
// state yet and seed is non-empty, the seed becomes the initial
// snapshot (so a trace-loaded store survives the first crash too).
// A recovery that quarantined a corrupt segment still opens — the
// caller can inspect Recovery().Failure and serve degraded.
func OpenDurable(dir string, seed *Store, opts DurableOptions) (*Durable, error) {
	s := New()
	w, rec, err := wal.Open(dir, wal.Options{
		SegmentBytes:   opts.SegmentBytes,
		Policy:         opts.Policy,
		Interval:       opts.Interval,
		FS:             opts.FS,
		AppendObserver: opts.AppendObserver,
		BumpEpoch:      opts.BumpEpoch,
	}, func(payload []byte) error {
		var j job.Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return fmt.Errorf("store: replay record: %w", err)
		}
		return s.Insert(&j)
	})
	if err != nil {
		return nil, err
	}
	d := &Durable{
		s:         s,
		wal:       w,
		observer:  opts.AppendObserver,
		snapEvery: opts.SnapshotEvery,
		recovery:  rec,
	}
	d.lastSnapErr.Store("")
	if rec.SnapshotRecords == 0 && rec.SegmentRecords == 0 && seed != nil && seed.Len() > 0 {
		if err := s.Insert(seed.All()...); err != nil {
			w.Close()
			return nil, err
		}
		if err := d.Snapshot(); err != nil {
			w.Close()
			return nil, fmt.Errorf("store: seed snapshot: %w", err)
		}
	}
	return d, nil
}

// Store exposes the in-memory repository for the read paths (queries
// never touch the log).
func (d *Durable) Store() *Store { return d.s }

// WAL exposes the underlying log — the replication source serves its
// manifest and file chunks from it.
func (d *Durable) WAL() *wal.WAL { return d.wal }

// CommittedSeq is the durable record sequence of the log (see
// wal.CommittedSeq).
func (d *Durable) CommittedSeq() uint64 { return d.wal.CommittedSeq() }

// Insert logs the jobs, applies them to memory, and returns once the
// batch reached the durability point of the configured fsync policy.
// On a log error nothing is applied and nothing may be acknowledged.
func (d *Durable) Insert(jobs ...*job.Job) error {
	if len(jobs) == 0 {
		return nil
	}
	payloads := make([][]byte, len(jobs))
	for i, j := range jobs {
		if j.ID == "" {
			return fmt.Errorf("store: job with empty id")
		}
		b, err := json.Marshal(j)
		if err != nil {
			return fmt.Errorf("store: encode job %s: %w", j.ID, err)
		}
		payloads[i] = b
	}
	t0 := time.Now()
	d.mu.Lock()
	lsn, err := d.wal.Reserve(payloads)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.s.Insert(jobs...); err != nil {
		// Unreachable after the validation above, but never leave the
		// log and memory disagreeing silently.
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	if err := d.wal.Commit(lsn); err != nil {
		return err
	}
	if d.observer != nil {
		d.observer(time.Since(t0).Seconds())
	}
	if d.snapEvery > 0 && d.sinceSnap.Add(int64(len(jobs))) >= int64(d.snapEvery) {
		d.snapshotAsync()
	}
	return nil
}

// snapshotAsync starts a single-flight background snapshot; a failure
// is recorded for Health and retried by the next countdown expiry.
func (d *Durable) snapshotAsync() {
	if !d.snapping.CompareAndSwap(false, true) {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.snapping.Store(false)
		if err := d.Snapshot(); err != nil {
			d.lastSnapErr.Store(err.Error())
		} else {
			d.lastSnapErr.Store("")
		}
	}()
}

// Snapshot captures the current state, publishes it atomically and
// compacts the log. The state dump and the coverage point are taken
// under the apply lock, so no record can fall between them.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	jobs := d.s.All()
	cover, base, err := d.wal.BeginSnapshot()
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.sinceSnap.Store(0)
	d.mu.Unlock()
	return d.wal.CompleteSnapshot(cover, base, func(emit func([]byte) error) error {
		for _, j := range jobs {
			b, err := json.Marshal(j)
			if err != nil {
				return fmt.Errorf("store: encode job %s: %w", j.ID, err)
			}
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	})
}

// AttachDurable wires an already-materialized store over dir: the log is
// opened read-write discarding its replayed records (st is expected to
// already contain them, plus whatever replicated tail arrived beyond the
// local disk state), the sequence base is raised to baseSeq, and an
// immediate snapshot publishes st so the directory converges to the
// in-memory state. The promotion path uses it to turn a follower's store
// into a durable leader store after WriteEpoch fenced the old leader.
func AttachDurable(dir string, st *Store, baseSeq uint64, opts DurableOptions) (*Durable, error) {
	w, rec, err := wal.Open(dir, wal.Options{
		SegmentBytes:   opts.SegmentBytes,
		Policy:         opts.Policy,
		Interval:       opts.Interval,
		FS:             opts.FS,
		AppendObserver: opts.AppendObserver,
		BumpEpoch:      opts.BumpEpoch,
	}, nil)
	if err != nil {
		return nil, err
	}
	w.SetBaseSeq(baseSeq)
	d := &Durable{
		s:         st,
		wal:       w,
		observer:  opts.AppendObserver,
		snapEvery: opts.SnapshotEvery,
		recovery:  rec,
	}
	d.lastSnapErr.Store("")
	if err := d.Snapshot(); err != nil {
		w.Close()
		return nil, fmt.Errorf("store: attach snapshot: %w", err)
	}
	return d, nil
}

// LoadReadOnly replays the durable state under dir into a fresh Store
// without mutating the directory in any way (wal read-only mode): no
// torn-tail truncation, no quarantine renames, no fresh segment. A
// follower uses it to warm-start from a previous leader's data dir it
// does not own.
func LoadReadOnly(dir string, fsys wal.FS) (*Store, wal.Recovery, error) {
	s := New()
	w, rec, err := wal.Open(dir, wal.Options{FS: fsys, ReadOnly: true}, func(payload []byte) error {
		var j job.Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return fmt.Errorf("store: replay record: %w", err)
		}
		return s.Insert(&j)
	})
	if err != nil {
		return nil, rec, err
	}
	w.Close()
	return s, rec, nil
}

// Close waits for any background snapshot and closes the log, flushing
// pending records durably.
func (d *Durable) Close() error {
	d.wg.Wait()
	return d.wal.Close()
}

// Recovery returns what the boot-time replay found.
func (d *Durable) Recovery() wal.Recovery { return d.recovery }

// Stats returns the log's operational counters.
func (d *Durable) Stats() wal.Stats { return d.wal.Stats() }

// DurabilityHealth is the /healthz durability section.
type DurabilityHealth struct {
	Policy              string  `json:"fsync_policy"`
	LastFsyncAgeSeconds float64 `json:"last_fsync_age_seconds"` // -1 before the first fsync
	Segments            int64   `json:"segments"`
	Appends             int64   `json:"appends"`
	RecoveryOutcome     string  `json:"last_boot_recovery"`
	RecoveredRecords    int     `json:"recovered_records"`
	TornTailTruncations int     `json:"torn_tail_truncations"`
	LastSnapshotError   string  `json:"last_snapshot_error,omitempty"`
}

// Health summarizes the durability posture for /healthz.
func (d *Durable) Health() DurabilityHealth {
	st := d.wal.Stats()
	age := -1.0
	if !st.LastFsync.IsZero() {
		age = time.Since(st.LastFsync).Seconds()
	}
	errStr, _ := d.lastSnapErr.Load().(string)
	return DurabilityHealth{
		Policy:              st.Policy.String(),
		LastFsyncAgeSeconds: age,
		Segments:            st.Segments,
		Appends:             st.Appends,
		RecoveryOutcome:     d.recovery.Outcome(),
		RecoveredRecords:    d.recovery.SnapshotRecords + d.recovery.SegmentRecords,
		TornTailTruncations: d.recovery.TornTailTruncations,
		LastSnapshotError:   errStr,
	}
}
