package store

// Store-level crash-consistency tests (part of make crash): the WAL
// suite proves the log's contract; these prove the Durable wrapper
// preserves it end to end — an acknowledged Insert survives a kill at
// any byte offset.

import (
	"fmt"
	"sync"
	"testing"

	"mcbound/internal/stats"
	"mcbound/internal/wal"
	"mcbound/internal/wal/crashfs"
)

// TestCrashDurableAckedInsertsSurvive sweeps seeded kill points under
// fsync=always: every Insert that returned nil must be present after
// crash recovery, and nothing unacknowledged may half-appear beyond the
// jobs the log had already made durable.
func TestCrashDurableAckedInsertsSurvive(t *testing.T) {
	const seeds = 30
	for seed := uint64(1); seed <= seeds; seed++ {
		rng := stats.NewRNG(seed * 6151)
		fs := crashfs.New(seed + 500)
		d, err := OpenDurable("data", nil, DurableOptions{
			FS: fs, Policy: wal.FsyncAlways, SegmentBytes: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		fs.KillAfterBytes(int64(rng.Intn(100 * 210)))
		var acked []string
		for i := 0; i < 100; i++ {
			j := durJob(i)
			if err := d.Insert(j); err != nil {
				break
			}
			acked = append(acked, j.ID)
		}
		if !fs.Killed() {
			d.Close()
		}
		fs.Crash()

		d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if rec := d2.Recovery(); rec.Failure != nil {
			t.Fatalf("seed %d: recovery failure %v", seed, rec.Failure)
		}
		got := d2.Store().Len()
		if got != len(acked) {
			t.Fatalf("seed %d: recovered %d jobs, acked %d", seed, got, len(acked))
		}
		for _, id := range acked {
			if _, err := d2.Store().Get(id); err != nil {
				t.Fatalf("seed %d: acked job %s lost: %v", seed, id, err)
			}
		}
		d2.Close()
	}
}

// TestCrashDurableConcurrentInserts kills the process while several
// goroutines insert through the group-commit path; recovery must hold a
// superset of the acknowledged jobs and every recovered job must be one
// that an inserter actually submitted.
func TestCrashDurableConcurrentInserts(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		fs := crashfs.New(seed + 900)
		d, err := OpenDurable("data", nil, DurableOptions{
			FS: fs, Policy: wal.FsyncAlways, SegmentBytes: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(seed * 31)
		fs.KillAfterBytes(int64(rng.Intn(160 * 220)))

		const writers, perWriter = 4, 40
		ackedCh := make(chan string, writers*perWriter)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					j := durJob(w*1000 + i)
					j.ID = fmt.Sprintf("w%d-%05d", w, i)
					if err := d.Insert(j); err != nil {
						return
					}
					ackedCh <- j.ID
				}
			}(w)
		}
		wg.Wait()
		close(ackedCh)
		acked := make(map[string]bool)
		for id := range ackedCh {
			acked[id] = true
		}
		if !fs.Killed() {
			d.Close()
		}
		fs.Crash()

		d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if rec := d2.Recovery(); rec.Failure != nil {
			t.Fatalf("seed %d: recovery failure %v", seed, rec.Failure)
		}
		for id := range acked {
			if _, err := d2.Store().Get(id); err != nil {
				t.Fatalf("seed %d: acked job %s lost", seed, id)
			}
		}
		for _, j := range d2.Store().All() {
			// A recovered job that nobody acked is legal only if its
			// insert died between fsync and the ack; it must at least be
			// a well-formed submission from one of the writers.
			var w, i int
			if _, err := fmt.Sscanf(j.ID, "w%d-%d", &w, &i); err != nil || w >= writers || i >= perWriter {
				t.Fatalf("seed %d: recovered alien job %q", seed, j.ID)
			}
		}
		d2.Close()
	}
}

// TestCrashDurableKillDuringSnapshot arms the kill inside the
// snapshot+compaction path: whatever survives, recovery must still see
// every acknowledged job (from the old snapshot/segments or the new).
func TestCrashDurableKillDuringSnapshot(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		fs := crashfs.New(seed + 1300)
		d, err := OpenDurable("data", nil, DurableOptions{
			FS: fs, Policy: wal.FsyncAlways, SegmentBytes: 2048,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := d.Insert(durJob(i)); err != nil {
				t.Fatalf("seed %d: setup insert: %v", seed, err)
			}
		}
		rng := stats.NewRNG(seed * 17)
		fs.KillAfterBytes(int64(rng.Intn(50 * 200)))
		_ = d.Snapshot() // may die anywhere inside
		fs.Crash()

		d2, err := OpenDurable("data", nil, DurableOptions{FS: fs, Policy: wal.FsyncAlways})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if rec := d2.Recovery(); rec.Failure != nil {
			t.Fatalf("seed %d: recovery failure %v", seed, rec.Failure)
		}
		if n := d2.Store().Len(); n != 50 {
			t.Fatalf("seed %d: recovered %d jobs, want all 50 acked", seed, n)
		}
		d2.Close()
	}
}
