package replay_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/fetch"
	"mcbound/internal/httpapi"
	"mcbound/internal/job"
	"mcbound/internal/replay"
	"mcbound/internal/simulate"
	"mcbound/internal/store"
)

// traceStore builds the same fixed-seed trace as the offline golden
// replay (simulate's goldenStore): two clean apps plus "mixapp" whose
// ground truth flips with submission-day parity, so the per-window F1
// series actually varies and a schedule-only match cannot pass.
func traceStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	seq := 0
	for day := 0; day < 40; day++ {
		apps := []struct {
			name         string
			perfGF, bwGB float64
		}{
			{"memapp", 60, 60},
			{"compapp", 500, 10},
			{"mixapp", 60, 60},
		}
		if day%2 == 1 {
			apps[2].perfGF, apps[2].bwGB = 500, 10
		}
		for i := 0; i < 4; i++ {
			for _, app := range apps {
				submit := start.AddDate(0, 0, day).Add(time.Duration(i) * time.Hour)
				durSec := 1200.0
				err := st.Insert(&job.Job{
					ID:             fmt.Sprintf("g%05d", seq),
					User:           "u0001",
					Name:           app.name,
					Environment:    "gcc/12.2",
					CoresRequested: 48,
					NodesRequested: 1,
					NodesAllocated: 1,
					FreqRequested:  job.FreqNormal,
					SubmitTime:     submit,
					StartTime:      submit.Add(time.Minute),
					EndTime:        submit.Add(21 * time.Minute),
					Counters: job.PerfCounters{
						Perf2: app.perfGF * 1e9 * durSec,
						Perf4: app.bwGB * 1e9 * durSec * job.CoresPerCMG / job.CacheLineBytes,
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				seq++
			}
		}
	}
	return st
}

func frameworkConfig(t *testing.T) core.Config {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Alpha, cfg.Beta = 10, 2
	cfg.ModelDir = t.TempDir() // fresh registry: versions are 1,2,3,...
	return cfg
}

// liveTarget wires an empty-store MCBound server plus a replay manager
// reading from source, with the manager's traffic looping through the
// server's full HTTP middleware stack in-process.
func liveTarget(t *testing.T, source *store.Store, clock replay.Clock) (*httptest.Server, *replay.Manager, *core.Framework, *store.Store) {
	t.Helper()
	serverStore := store.New()
	fw, err := core.New(frameworkConfig(t), fetch.StoreBackend{Store: serverStore})
	if err != nil {
		t.Fatal(err)
	}
	char := fw.Characterizer()
	mgr := replay.NewManager(replay.Options{
		Source: source,
		Clock:  clock,
		Truth: func(j *job.Job) (job.Label, bool) {
			pt, err := char.Characterize(j)
			if err != nil {
				return job.Unknown, false
			}
			return pt.Label, true
		},
	})
	api := httpapi.New(fw, serverStore, log.New(io.Discard, "", 0), httpapi.Options{Replay: mgr})
	mgr.SetTarget(api)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return srv, mgr, fw, serverStore
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func replayStatus(t *testing.T, base string) replay.Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/replay")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st replay.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

var goldenWindow = replay.Config{
	Start: time.Date(2024, 1, 15, 0, 0, 0, 0, time.UTC),
	End:   time.Date(2024, 1, 29, 0, 0, 0, 0, time.UTC),
	Speed: 100,
}

// TestReplayE2EGolden: a ×100 replay driven through the live HTTP path
// (streaming NDJSON inserts, classify and train requests against a
// server that starts empty) must reproduce the offline simulator's
// timeline byte for byte — same train triggers, same model versions,
// same window volumes, same per-day F1 to three decimals.
func TestReplayE2EGolden(t *testing.T) {
	source := traceStore(t)

	// Live side first, so the source trace is pristine when serialized.
	srv, mgr, _, serverStore := liveTarget(t, source, replay.InstantClock{})
	resp, body := postJSON(t, srv.URL+"/v1/replay", goldenWindow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start replay: status %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := mgr.Wait(ctx); err != nil {
		t.Fatalf("replay did not finish: %v (status %+v)", err, mgr.Status())
	}
	st := mgr.Status()
	if st.State != replay.StateDone {
		t.Fatalf("replay state %q (error %q), want done", st.State, st.Error)
	}

	// Offline reference on the same trace, fresh model registry.
	fw, err := core.New(frameworkConfig(t), fetch.StoreBackend{Store: source})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := (&simulate.Replay{Framework: fw}).Run(
		context.Background(), goldenWindow.Start, goldenWindow.End)
	if err != nil {
		t.Fatal(err)
	}

	var liveText, offlineText bytes.Buffer
	if err := mgr.Timeline().WriteText(&liveText); err != nil {
		t.Fatal(err)
	}
	if err := offline.WriteText(&offlineText); err != nil {
		t.Fatal(err)
	}
	if liveText.String() != offlineText.String() {
		gl := strings.Split(strings.TrimRight(liveText.String(), "\n"), "\n")
		ol := strings.Split(strings.TrimRight(offlineText.String(), "\n"), "\n")
		n := max(len(gl), len(ol))
		for i := 0; i < n; i++ {
			g, w := "", ""
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(ol) {
				w = ol[i]
			}
			if g != w {
				t.Errorf("timeline line %d:\n  live    %q\n  offline %q", i+1, g, w)
			}
		}
		t.Fatal("live replay timeline diverged from offline simulation")
	}

	// Record accounting: every trace record that completed before End
	// was replayed exactly once; none were rejected or duplicated.
	expected, _ := source.ExecutedPage(time.Time{}, goldenWindow.End, store.Pos{}, 0)
	if st.Records != len(expected) {
		t.Fatalf("replayed %d records, want %d", st.Records, len(expected))
	}
	if st.Rejected != 0 {
		t.Fatalf("%d records rejected", st.Rejected)
	}
	if serverStore.Len() != len(expected) {
		t.Fatalf("server store holds %d jobs, want %d", serverStore.Len(), len(expected))
	}
	if st.WindowsDone != st.WindowsTotal || st.WindowsDone == 0 {
		t.Fatalf("windows %d/%d, want all done", st.WindowsDone, st.WindowsTotal)
	}
}

// TestReplayE2EPauseResume: pausing freezes progress (no records move
// while paused), resuming completes the replay with exact record
// accounting — nothing duplicated, nothing dropped — and the lifecycle
// conflicts answer 409 through the HTTP surface.
func TestReplayE2EPauseResume(t *testing.T) {
	source := traceStore(t)
	srv, mgr, _, serverStore := liveTarget(t, source, replay.RealClock{})

	warmup, _ := source.ExecutedPage(time.Time{}, goldenWindow.Start, store.Pos{}, 0)
	expected, _ := source.ExecutedPage(time.Time{}, goldenWindow.End, store.Pos{}, 0)

	cfg := goldenWindow
	cfg.Speed = 5e6 // 14 simulated days ≈ 240ms of pacing
	resp, body := postJSON(t, srv.URL+"/v1/replay", cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start replay: status %d: %s", resp.StatusCode, body)
	}

	// A second start while active must conflict.
	resp, body = postJSON(t, srv.URL+"/v1/replay", cfg)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent start: status %d, want 409: %s", resp.StatusCode, body)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &eb); eb.Code != "replay_conflict" {
		t.Fatalf("concurrent start: code %q, want replay_conflict", eb.Code)
	}

	// Wait for the replay to get past warm-up, then pause mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for replayStatus(t, srv.URL).Records <= len(warmup) {
		if time.Now().After(deadline) {
			t.Fatalf("replay made no window progress: %+v", replayStatus(t, srv.URL))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, body = postJSON(t, srv.URL+"/v1/replay/pause", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause: status %d: %s", resp.StatusCode, body)
	}

	// Let any in-flight step drain to its checkpoint, then verify the
	// job is actually frozen.
	time.Sleep(300 * time.Millisecond)
	before := replayStatus(t, srv.URL)
	if before.State != replay.StatePaused {
		t.Fatalf("state %q after pause, want paused", before.State)
	}
	time.Sleep(400 * time.Millisecond)
	after := replayStatus(t, srv.URL)
	if after.Records != before.Records || after.Trains != before.Trains || after.WindowsDone != before.WindowsDone {
		t.Fatalf("progress while paused: %+v -> %+v", before, after)
	}
	if before.Records >= len(expected) {
		t.Fatalf("replay finished before pause took effect (records=%d); speed up the trace", before.Records)
	}

	// healthz carries the paused replay's progress.
	var health struct {
		Replay map[string]any `json:"replay"`
	}
	hres, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hres.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if health.Replay["state"] != "paused" {
		t.Fatalf("healthz replay section %+v, want state paused", health.Replay)
	}

	if resp, body = postJSON(t, srv.URL+"/v1/replay/resume", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := mgr.Wait(ctx); err != nil {
		t.Fatalf("replay did not finish after resume: %v (%+v)", err, mgr.Status())
	}

	final := mgr.Status()
	if final.State != replay.StateDone {
		t.Fatalf("final state %q (error %q), want done", final.State, final.Error)
	}
	// Exact accounting across the pause: nothing dropped, nothing
	// replayed twice (the store would reject or double-count dupes).
	if final.Records != len(expected) {
		t.Fatalf("replayed %d records across pause/resume, want exactly %d", final.Records, len(expected))
	}
	if serverStore.Len() != len(expected) {
		t.Fatalf("server store holds %d jobs, want exactly %d", serverStore.Len(), len(expected))
	}
	if final.Rejected != 0 {
		t.Fatalf("%d records rejected", final.Rejected)
	}

	// Verbs on a finished job conflict; DELETE clears it back to idle.
	if resp, body = postJSON(t, srv.URL+"/v1/replay/pause", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause after done: status %d, want 409: %s", resp.StatusCode, body)
	}
	if json.Unmarshal(body, &eb); eb.Code != "replay_not_active" {
		t.Fatalf("pause after done: code %q, want replay_not_active", eb.Code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/replay", nil)
	dres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusOK {
		t.Fatalf("delete finished replay: status %d", dres.StatusCode)
	}
	if st := replayStatus(t, srv.URL); st.State != replay.StateIdle {
		t.Fatalf("state %q after delete, want idle", st.State)
	}
}
