package replay

import (
	"bytes"
	"io"
	"net/http"
)

// Doer is the minimal HTTP client surface the replay manager drives the
// target API through. *http.Client satisfies it for a remote target;
// HandlerClient satisfies it for the common in-process case.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// HandlerClient serves requests straight into an http.Handler without a
// TCP listener: the replay traffic still crosses the full middleware
// stack (request IDs, access log, admission, instrumentation) but stays
// in-memory. Responses are buffered whole, which is fine for replay:
// every call the manager makes has a bounded response.
type HandlerClient struct {
	Handler http.Handler
}

// Do implements Doer.
func (c *HandlerClient) Do(req *http.Request) (*http.Response, error) {
	rec := &bufferRecorder{header: make(http.Header)}
	c.Handler.ServeHTTP(rec, req)
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	return &http.Response{
		StatusCode:    status,
		Status:        http.StatusText(status),
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// bufferRecorder is a minimal ResponseWriter + Flusher (the streaming
// ingest handler flushes after every ack frame; in-memory that is a
// no-op, but the type assertion must succeed).
type bufferRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *bufferRecorder) Header() http.Header { return r.header }

func (r *bufferRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *bufferRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

func (r *bufferRecorder) Flush() {}
