// Package replay drives a historical job trace through a *live* MCBound
// server at a configurable speed-up: the server-side twin of
// internal/simulate. Where simulate.Replay calls the Framework facade
// in-process, the replay Manager issues real HTTP traffic — NDJSON
// streaming inserts, classify calls, train triggers — against the v1
// API, so a replay exercises exactly what production clients exercise
// (middleware, admission, durability) while reproducing the offline
// simulation's timeline event for event.
//
// A Manager runs at most one replay job at a time (starting a second
// one fails with ErrConflict → HTTP 409); the active job can be
// paused, resumed and canceled, and reports progress (simulated clock,
// records replayed, windows completed) in its status document.
package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"mcbound/internal/job"
	"mcbound/internal/metrics"
	"mcbound/internal/simulate"
	"mcbound/internal/store"
)

// State is the lifecycle phase of the replay resource.
type State string

// Replay job states. Exactly one job exists at a time; done/failed/
// canceled jobs keep their final status visible until the next Start
// or an explicit DELETE resets to idle.
const (
	StateIdle     State = "idle"
	StateRunning  State = "running"
	StatePaused   State = "paused"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Sentinel errors of the replay resource; the HTTP layer maps both to
// 409 Conflict.
var (
	// ErrConflict rejects starting a replay while one is active.
	ErrConflict = errors.New("replay: a replay job is already active")
	// ErrNotActive rejects pause/resume/cancel without a matching
	// active job.
	ErrNotActive = errors.New("replay: no active replay job")
)

// DefaultBatchSize bounds one streaming-insert request.
const DefaultBatchSize = 500

// paceSlice bounds one uninterruptible pacing sleep so pause and
// cancel take effect promptly even inside a long inter-window wait.
const paceSlice = 100 * time.Millisecond

// Options configure a Manager.
type Options struct {
	// Source is the historical trace the replay reads from. Required.
	Source *store.Store

	// Client issues the replay's HTTP traffic. Usually left nil and
	// wired via SetTarget once the API handler exists.
	Client Doer

	// BaseURL prefixes request paths ("" for an in-process
	// HandlerClient, "http://host:port" for a remote target).
	BaseURL string

	// Truth returns the ground-truth label for a replayed job, used to
	// score each inference window's F1. nil disables evaluation (F1
	// reports 0 over n=0).
	Truth func(*job.Job) (job.Label, bool)

	// Clock paces the replay; nil selects RealClock. InstantClock runs
	// the schedule as fast as the target absorbs it.
	Clock Clock

	// BatchSize caps records per streaming-insert request; 0 selects
	// DefaultBatchSize.
	BatchSize int

	// Beta overrides the β retraining period in days; 0 queries the
	// target's GET /v1/model.
	Beta int

	// Log receives progress lines; nil discards them.
	Log *log.Logger
}

// Config parameterizes one replay job (the POST /v1/replay body).
type Config struct {
	// Start/End bound the replayed period [Start, End).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Speed is the time compression factor (100 = one simulated day
	// per 14.4 wall minutes); 0 means 1.
	Speed float64 `json:"speed"`
}

// Status is the replay resource's state document.
type Status struct {
	State State `json:"state"`

	// Job parameters (zero until the first Start).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Speed float64   `json:"speed,omitempty"`

	// Progress.
	SimClock     time.Time `json:"sim_clock"`
	Records      int       `json:"records_replayed"`
	Rejected     int       `json:"records_rejected"`
	Predictions  int       `json:"predictions"`
	Trains       int       `json:"trains"`
	WindowsDone  int       `json:"windows_done"`
	WindowsTotal int       `json:"windows_total"`

	StartedAt time.Time `json:"started_at"`
	Error     string    `json:"error,omitempty"`
}

// Manager owns the singleton replay job.
type Manager struct {
	opts Options

	mu           sync.Mutex
	state        State
	cfg          Config
	simClock     time.Time
	records      int
	rejected     int
	predictions  int
	trains       int
	windowsDone  int
	windowsTotal int
	startedAt    time.Time
	errMsg       string
	cancel       context.CancelFunc
	resumeCh     chan struct{} // non-nil exactly while paused
	done         chan struct{} // closed when the active run's goroutine exits
	timeline     *simulate.Timeline
}

// NewManager builds a Manager; opts.Source is required.
func NewManager(opts Options) *Manager {
	if opts.Clock == nil {
		opts.Clock = RealClock{}
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	return &Manager{opts: opts, state: StateIdle}
}

// SetTarget points the manager at an in-process API handler. No-op if
// an explicit Client was configured.
func (m *Manager) SetTarget(h http.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opts.Client == nil {
		m.opts.Client = &HandlerClient{Handler: h}
	}
}

// Start launches a replay job. It fails with ErrConflict while another
// job is running or paused; a finished job's status is replaced.
func (m *Manager) Start(cfg Config) (Status, error) {
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if cfg.Speed < 0 {
		return Status{}, fmt.Errorf("replay: negative speed %v", cfg.Speed)
	}
	if !cfg.End.After(cfg.Start) {
		return Status{}, fmt.Errorf("replay: end %v not after start %v", cfg.End, cfg.Start)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opts.Source == nil || m.opts.Client == nil {
		return Status{}, fmt.Errorf("replay: manager not wired (source and client required)")
	}
	if m.state == StateRunning || m.state == StatePaused {
		return m.statusLocked(), ErrConflict
	}
	m.state = StateRunning
	m.cfg = cfg
	m.simClock = cfg.Start
	m.records, m.rejected, m.predictions, m.trains = 0, 0, 0, 0
	m.windowsDone, m.windowsTotal = 0, 0
	m.startedAt = m.opts.Clock.Now().UTC()
	m.errMsg = ""
	m.timeline = &simulate.Timeline{}
	m.done = make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	go m.run(ctx, cfg)
	return m.statusLocked(), nil
}

// Pause suspends the active job at its next checkpoint (window
// boundary, insert batch or pacing slice). ErrNotActive unless running.
func (m *Manager) Pause() (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning {
		return m.statusLocked(), ErrNotActive
	}
	m.state = StatePaused
	m.resumeCh = make(chan struct{})
	return m.statusLocked(), nil
}

// Resume continues a paused job. ErrNotActive unless paused.
func (m *Manager) Resume() (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StatePaused {
		return m.statusLocked(), ErrNotActive
	}
	m.state = StateRunning
	close(m.resumeCh)
	m.resumeCh = nil
	return m.statusLocked(), nil
}

// Cancel aborts the active job (its state becomes "canceled" once the
// driver unwinds) or, on an already-finished job, resets the resource
// to idle. ErrNotActive when there is nothing to delete.
func (m *Manager) Cancel() (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case StateRunning, StatePaused:
		m.cancel()
		return m.statusLocked(), nil
	case StateDone, StateFailed, StateCanceled:
		m.state = StateIdle
		m.cfg = Config{}
		m.simClock = time.Time{}
		m.records, m.rejected, m.predictions, m.trains = 0, 0, 0, 0
		m.windowsDone, m.windowsTotal = 0, 0
		m.startedAt = time.Time{}
		m.errMsg = ""
		return m.statusLocked(), nil
	default:
		return m.statusLocked(), ErrNotActive
	}
}

// Status snapshots the resource's state document.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statusLocked()
}

// Active reports whether a job is running or paused.
func (m *Manager) Active() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == StateRunning || m.state == StatePaused
}

// Wait blocks until the active job's goroutine exits (any terminal
// state) or ctx is done. ErrNotActive when no job was ever started.
func (m *Manager) Wait(ctx context.Context) error {
	m.mu.Lock()
	ch := m.done
	m.mu.Unlock()
	if ch == nil {
		return ErrNotActive
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Timeline returns a copy of the (possibly still growing) operational
// timeline of the current/last job, in simulate's golden format.
func (m *Manager) Timeline() *simulate.Timeline {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl := &simulate.Timeline{}
	if m.timeline != nil {
		tl.Events = append(tl.Events, m.timeline.Events...)
	}
	return tl
}

func (m *Manager) statusLocked() Status {
	return Status{
		State:        m.state,
		Start:        m.cfg.Start,
		End:          m.cfg.End,
		Speed:        m.cfg.Speed,
		SimClock:     m.simClock,
		Records:      m.records,
		Rejected:     m.rejected,
		Predictions:  m.predictions,
		Trains:       m.trains,
		WindowsDone:  m.windowsDone,
		WindowsTotal: m.windowsTotal,
		StartedAt:    m.startedAt,
		Error:        m.errMsg,
	}
}

func (m *Manager) run(ctx context.Context, cfg Config) {
	err := m.drive(ctx, cfg)
	m.mu.Lock()
	switch {
	case err == nil:
		m.state = StateDone
	case errors.Is(err, context.Canceled):
		m.state = StateCanceled
	default:
		m.state = StateFailed
		m.errMsg = err.Error()
	}
	if m.resumeCh != nil { // canceled while paused
		close(m.resumeCh)
		m.resumeCh = nil
	}
	close(m.done)
	m.mu.Unlock()
	if err != nil && !errors.Is(err, context.Canceled) {
		m.logf("replay failed: %v", err)
	}
}

// drive replays [cfg.Start, cfg.End) against the live API, mirroring
// simulate.Replay.Run step for step so both produce the same timeline:
//
//  1. warm-up — stream-insert every trace record that executed before
//     Start (the α-window history a deployed system would already hold);
//  2. initial Training Workflow at Start (the deploy script);
//  3. per β window: classify the window's submissions over POST
//     /v1/classify, score them against ground truth, pace the simulated
//     window at ×Speed, stream-insert the records that completed during
//     the window, and retrain at the window boundary (the cron job).
func (m *Manager) drive(ctx context.Context, cfg Config) error {
	beta := m.opts.Beta
	if beta <= 0 {
		var err error
		if beta, err = m.fetchBeta(ctx); err != nil {
			return err
		}
	}
	total := 0
	for now := cfg.Start; now.Before(cfg.End); now = now.AddDate(0, 0, beta) {
		total++
	}
	m.mu.Lock()
	m.windowsTotal = total
	m.mu.Unlock()

	history, _ := m.opts.Source.ExecutedPage(time.Time{}, cfg.Start, store.Pos{}, 0)
	m.logf("replay warm-up: %d historical records", len(history))
	if err := m.streamInsert(ctx, history); err != nil {
		return fmt.Errorf("replay: warm-up insert: %w", err)
	}
	if err := m.train(ctx, cfg.Start); err != nil {
		return err
	}

	lastEnd := cfg.Start
	for now := cfg.Start; now.Before(cfg.End); now = now.AddDate(0, 0, beta) {
		if err := m.checkpoint(ctx); err != nil {
			return err
		}
		windowEnd := now.AddDate(0, 0, beta)
		if windowEnd.After(cfg.End) {
			windowEnd = cfg.End
		}
		if err := m.infer(ctx, now, windowEnd); err != nil {
			return err
		}
		if err := m.pace(ctx, windowEnd.Sub(now), cfg.Speed); err != nil {
			return err
		}
		// The window has elapsed: its completed jobs become history the
		// next training window may draw on.
		completed, _ := m.opts.Source.ExecutedPage(lastEnd, windowEnd, store.Pos{}, 0)
		if err := m.streamInsert(ctx, completed); err != nil {
			return fmt.Errorf("replay: window insert at %v: %w", windowEnd, err)
		}
		lastEnd = windowEnd
		m.mu.Lock()
		m.simClock = windowEnd
		m.mu.Unlock()
		if windowEnd.Before(cfg.End) {
			if err := m.train(ctx, windowEnd); err != nil {
				return err
			}
		}
		m.mu.Lock()
		m.windowsDone++
		m.mu.Unlock()
	}
	return nil
}

// checkpoint blocks while the job is paused and surfaces cancellation.
func (m *Manager) checkpoint(ctx context.Context) error {
	for {
		m.mu.Lock()
		ch := m.resumeCh
		m.mu.Unlock()
		if ch == nil {
			return ctx.Err()
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// pace sleeps the wall-clock equivalent of a simulated duration at the
// job's speed, in slices so pause/cancel stay responsive.
func (m *Manager) pace(ctx context.Context, simDelta time.Duration, speed float64) error {
	wall := time.Duration(float64(simDelta) / speed)
	for wall > 0 {
		if err := m.checkpoint(ctx); err != nil {
			return err
		}
		d := wall
		if d > paceSlice {
			d = paceSlice
		}
		if err := m.opts.Clock.Sleep(ctx, d); err != nil {
			return err
		}
		wall -= d
	}
	return m.checkpoint(ctx)
}

// infer classifies one window's submissions through POST /v1/classify
// and scores the predictions against ground truth, producing the same
// timeline event the offline simulator records.
func (m *Manager) infer(ctx context.Context, now, windowEnd time.Time) error {
	jobs, _ := m.opts.Source.SubmittedPage(now, windowEnd, store.Pos{}, 0)
	ev := simulate.Event{Time: now, Kind: simulate.EventInfer}
	if len(jobs) > 0 {
		preds, err := m.classify(ctx, jobs)
		if err != nil {
			return fmt.Errorf("replay: inference at %v: %w", now, err)
		}
		if len(preds) != len(jobs) {
			return fmt.Errorf("replay: inference at %v: %d predictions for %d jobs", now, len(preds), len(jobs))
		}
		ev.Classified = len(preds)
		conf := metrics.NewConfusion()
		for i, p := range preds {
			if p.Class == job.MemoryBound.String() {
				ev.MemoryBound++
			}
			if m.opts.Truth == nil {
				continue
			}
			truth, ok := m.opts.Truth(jobs[i])
			if !ok {
				continue // ground truth never materializes for this job
			}
			predicted, err := job.ParseLabel(p.Class)
			if err != nil {
				return fmt.Errorf("replay: bad class %q from target: %w", p.Class, err)
			}
			conf.Add(truth, predicted)
			ev.Evaluated++
		}
		if ev.Evaluated > 0 {
			ev.F1 = conf.F1Macro()
		}
	}
	m.mu.Lock()
	m.timeline.Events = append(m.timeline.Events, ev)
	m.predictions += ev.Classified
	m.mu.Unlock()
	m.logf("%s infer: %d classified (%d memory-bound, f1=%.3f over %d)",
		now.Format("2006-01-02"), ev.Classified, ev.MemoryBound, ev.F1, ev.Evaluated)
	return nil
}

// train triggers the Training Workflow at the simulated instant now.
func (m *Manager) train(ctx context.Context, now time.Time) error {
	body, _ := json.Marshal(map[string]string{"now": now.UTC().Format(time.RFC3339)})
	resp, err := m.do(ctx, http.MethodPost, "/v1/train", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("replay: training at %v: %w", now, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replay: training at %v: %w", now, httpError(resp))
	}
	var rep struct {
		LabeledJobs  int `json:"labeled_jobs"`
		ModelVersion int `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("replay: training response at %v: %w", now, err)
	}
	m.mu.Lock()
	m.trains++
	m.timeline.Events = append(m.timeline.Events, simulate.Event{
		Time: now, Kind: simulate.EventTrain,
		TrainedOn: rep.LabeledJobs, ModelVersion: rep.ModelVersion,
	})
	m.mu.Unlock()
	m.logf("%s train: v%d on %d jobs", now.Format("2006-01-02"), rep.ModelVersion, rep.LabeledJobs)
	return nil
}

// classify posts one window's job records to POST /v1/classify.
func (m *Manager) classify(ctx context.Context, jobs []*job.Job) ([]predBody, error) {
	body, err := json.Marshal(jobs)
	if err != nil {
		return nil, err
	}
	resp, err := m.do(ctx, http.MethodPost, "/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var preds []predBody
	if err := json.NewDecoder(resp.Body).Decode(&preds); err != nil {
		return nil, fmt.Errorf("bad classify response: %w", err)
	}
	return preds, nil
}

type predBody struct {
	JobID        string `json:"job_id"`
	Class        string `json:"class"`
	ModelVersion int    `json:"model_version"`
}

// streamInsert replays records through POST /v1/jobs/stream in
// BatchSize chunks, one request per chunk, checking the pause/cancel
// checkpoint between chunks and reconciling the ack/done frames.
func (m *Manager) streamInsert(ctx context.Context, jobs []*job.Job) error {
	for len(jobs) > 0 {
		if err := m.checkpoint(ctx); err != nil {
			return err
		}
		n := m.opts.BatchSize
		if n > len(jobs) {
			n = len(jobs)
		}
		if err := m.streamChunk(ctx, jobs[:n]); err != nil {
			return err
		}
		jobs = jobs[n:]
	}
	return nil
}

func (m *Manager) streamChunk(ctx context.Context, jobs []*job.Job) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, j := range jobs {
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("encode record %s: %w", j.ID, err)
		}
	}
	resp, err := m.do(ctx, http.MethodPost, "/v1/jobs/stream", "application/x-ndjson", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var sawDone bool
	for {
		var f struct {
			Frame    string `json:"frame"`
			Acked    int    `json:"acked"`
			Rejected int    `json:"rejected"`
			Line     int    `json:"line"`
			Error    string `json:"error"`
			Code     string `json:"code"`
			Fatal    bool   `json:"fatal"`
		}
		if err := dec.Decode(&f); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("bad stream frame: %w", err)
		}
		switch f.Frame {
		case "error":
			if f.Fatal {
				return fmt.Errorf("stream aborted at line %d: %s (%s)", f.Line, f.Error, f.Code)
			}
			m.logf("record rejected at line %d: %s (%s)", f.Line, f.Error, f.Code)
		case "done":
			sawDone = true
			m.mu.Lock()
			m.records += f.Acked
			m.rejected += f.Rejected
			m.mu.Unlock()
		}
	}
	if !sawDone {
		return fmt.Errorf("stream ended without done frame")
	}
	return nil
}

// fetchBeta reads the retraining period from the target's model info.
func (m *Manager) fetchBeta(ctx context.Context) (int, error) {
	resp, err := m.do(ctx, http.MethodGet, "/v1/model", "", nil)
	if err != nil {
		return 0, fmt.Errorf("replay: fetch model info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replay: fetch model info: %w", httpError(resp))
	}
	var info struct {
		BetaDays int `json:"beta_days"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, fmt.Errorf("replay: bad model info: %w", err)
	}
	if info.BetaDays <= 0 {
		return 0, fmt.Errorf("replay: target reports non-positive beta %d", info.BetaDays)
	}
	return info.BetaDays, nil
}

// do issues one replay request, tagged with the replay client ID so
// the target's per-client rate accounting sees one logical client.
func (m *Manager) do(ctx context.Context, method, path, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, m.opts.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Client-Id", "replay")
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	m.mu.Lock()
	client := m.opts.Client
	m.mu.Unlock()
	return client.Do(req)
}

// httpError turns a non-2xx response into an error carrying the
// target's stable error code.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("target returned %d: %s (%s)", resp.StatusCode, eb.Error, eb.Code)
	}
	return fmt.Errorf("target returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Log != nil {
		m.opts.Log.Printf("replay: "+format, args...)
	}
}
