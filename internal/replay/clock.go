package replay

import (
	"context"
	"time"
)

// Clock abstracts replay pacing so tests (and the golden e2e harness)
// can run a ×N replay without real sleeps while the production manager
// honors wall-clock pacing.
type Clock interface {
	// Now is the wall-clock reference used for status timestamps.
	Now() time.Time
	// Sleep blocks for d or until ctx is done (returning ctx.Err()).
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock paces against the actual wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// InstantClock never sleeps: every pacing delay collapses to zero, so a
// replay runs as fast as the target can absorb it. The speed reported
// in the status document is still the configured one — InstantClock
// changes wall-clock behavior, not the simulated schedule.
type InstantClock struct{}

// Now implements Clock.
func (InstantClock) Now() time.Time { return time.Now() }

// Sleep implements Clock (returns immediately, honoring cancellation).
func (InstantClock) Sleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }
