// Coscheduling demonstrates the dispatching use case that motivates
// MCBound (§I, §IV-C): pairing memory-bound and compute-bound jobs on
// the same node raises throughput, but only if the classes are known at
// submission time. The example compares three dispatchers on the same
// submitted jobs — no sharing, blind pairing, and MCBound-informed
// complementary pairing — where pairing decisions use the *predicted*
// classes while the incurred contention uses the *true* ones, so
// prediction errors cost real slowdown.
//
//	go run ./examples/coscheduling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/sched"
	"mcbound/internal/store"
	"mcbound/internal/workload"
)

func main() {
	cfg := workload.EvalConfig(0.03)
	jobs, err := workload.NewGenerator(cfg, 7).Generate()
	if err != nil {
		log.Fatal(err)
	}
	st := store.New()
	if err := st.Insert(jobs...); err != nil {
		log.Fatal(err)
	}

	fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: st})
	if err != nil {
		log.Fatal(err)
	}
	trainAt := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	if _, err := fw.Train(context.Background(), trainAt); err != nil {
		log.Fatal(err)
	}

	// One week of submissions, classified before execution.
	week, err := fw.Fetcher().FetchSubmitted(context.Background(), trainAt, trainAt.AddDate(0, 0, 7))
	if err != nil {
		log.Fatal(err)
	}
	preds, err := fw.ClassifyJobs(context.Background(), week)
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]job.Label, len(preds))
	for i, p := range preds {
		labels[i] = p.Label
	}
	// Ground truth for the contention model (available once jobs ran).
	fw.Characterizer().GenerateLabels(week)

	model := sched.DefaultSlowdown()
	fmt.Printf("dispatching %d jobs submitted in the first week of February\n", len(week))
	fmt.Printf("contention model: mem+mem %.2fx, comp+comp %.2fx, mem+comp %.2fx\n\n",
		model.MemMem, model.CompComp, model.MemComp)
	fmt.Printf("%-16s %10s %12s %12s %12s %12s\n", "policy", "jobs", "paired", "node-hours", "saved nh", "avg slowdown")
	for _, policy := range []sched.PairingPolicy{
		sched.PolicyNone, sched.PolicyBlind, sched.PolicyComplementary, sched.PolicyOracle,
	} {
		res, err := sched.CoSchedule(week, labels, policy, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %12d %12.0f %12.0f %12.3f\n",
			res.Policy, res.Jobs, res.PairedJobs, res.NodeHours(), res.SavedNodeSecs/3600, res.AvgSlowdown)
	}
	fmt.Println("\ncomplementary pairing shares nodes with minimal dilation; blind")
	fmt.Println("pairing also shares but pays same-class contention. MCBound's")
	fmt.Println("predictions are what make the complementary policy possible at")
	fmt.Println("submission time.")
}
