// Quickstart walks the whole MCBound pipeline end to end in-process:
// generate a small synthetic Fugaku trace, stand up the framework over a
// jobs data storage, run the Training Workflow on the last α days, then
// classify a day of newly submitted jobs before their execution and
// compare against the Roofline ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/fetch"
	"mcbound/internal/metrics"
	"mcbound/internal/store"
	"mcbound/internal/workload"
)

func main() {
	// 1. A small synthetic trace (≈3% of Fugaku's volume, Dec–Feb).
	cfg := workload.EvalConfig(0.03)
	jobs, err := workload.NewGenerator(cfg, 7).Generate()
	if err != nil {
		log.Fatal(err)
	}
	st := store.New()
	if err := st.Insert(jobs...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d jobs between %s and %s\n", len(jobs),
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))

	// 2. Deploy the framework: Random Forest, α=15, β=1 (the paper's
	//    recommended production setting).
	fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: st})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Training Workflow as of February 1st: fetch the last α days of
	//    executed jobs, characterize them with the Roofline model, and
	//    train the Classification Model.
	trainAt := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	rep, err := fw.Train(context.Background(), trainAt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on [%s, %s): %d labeled jobs in %v\n",
		rep.WindowStart.Format("2006-01-02"), rep.WindowEnd.Format("2006-01-02"),
		rep.LabeledJobs, rep.TrainDuration.Round(time.Millisecond))

	// 4. Inference Workflow: classify everything submitted in the first
	//    week of February — before execution, from submission features
	//    only. (In production this trigger fires once every β days.)
	preds, err := fw.ClassifySubmitted(context.Background(), trainAt, trainAt.AddDate(0, 0, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified %d newly submitted jobs\n", len(preds))
	for _, p := range preds[:min(5, len(preds))] {
		fmt.Printf("  %s -> %s\n", p.JobID, p.Class)
	}

	// 5. Once those jobs complete, the Roofline characterization gives
	//    ground truth; score the predictions.
	conf := metrics.NewConfusion()
	for _, p := range preds {
		j, err := st.Get(p.JobID)
		if err != nil {
			log.Fatal(err)
		}
		pt, err := fw.Characterizer().Characterize(j)
		if err != nil {
			continue
		}
		conf.Add(pt.Label, p.Label)
	}
	fmt.Printf("\nprediction quality on the week (F1-macro %.3f):\n%s", conf.F1Macro(), conf.Report())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
