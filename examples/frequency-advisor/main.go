// Frequency-advisor reproduces the §V.C.d impact analysis as a working
// tool: it trains MCBound, classifies a month of submitted jobs before
// execution, recommends a frequency mode per job (normal for
// memory-bound, boost for compute-bound), and estimates the system-level
// power, energy and compute-time savings of following the advice —
// the paper's 450 MW / 14 GJ / 1,700 h back-of-envelope, computed from
// the trace instead of round numbers.
//
//	go run ./examples/frequency-advisor
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/sched"
	"mcbound/internal/store"
	"mcbound/internal/workload"
)

func main() {
	cfg := workload.EvalConfig(0.03)
	jobs, err := workload.NewGenerator(cfg, 7).Generate()
	if err != nil {
		log.Fatal(err)
	}
	st := store.New()
	if err := st.Insert(jobs...); err != nil {
		log.Fatal(err)
	}

	fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: st})
	if err != nil {
		log.Fatal(err)
	}
	trainAt := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	if _, err := fw.Train(context.Background(), trainAt); err != nil {
		log.Fatal(err)
	}

	// Classify the whole test month before execution.
	month, err := fw.Fetcher().FetchSubmitted(context.Background(), trainAt, trainAt.AddDate(0, 1, 0))
	if err != nil {
		log.Fatal(err)
	}
	preds, err := fw.ClassifyJobs(context.Background(), month)
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]job.Label, len(preds))
	for i, p := range preds {
		labels[i] = p.Label
	}

	// Per-job advice: show the cases where the user's choice disagrees
	// with the predicted class.
	fmt.Println("sample recommendations (user choice vs MCBound advice):")
	shown := 0
	for i, j := range month {
		a := sched.Advise(j, labels[i])
		if a.Requested == a.Recommended {
			continue
		}
		fmt.Printf("  %s: %s -> %s  (%s)\n", a.JobID, a.Requested, a.Recommended, a.Reason)
		if shown++; shown >= 5 {
			break
		}
	}

	// System-level impact of semi-automatic frequency selection.
	est, err := sched.EstimateImpact(month, labels, sched.PaperImpactFactors())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimpact estimate over %d jobs in February (trace scale 0.03):\n", len(month))
	fmt.Printf("  memory-bound jobs found in boost mode:   %d\n", est.MemBoostJobs)
	fmt.Printf("    -> switch to normal mode: save %.0f W/job avg, %.1f MW total, %.2f GJ energy\n",
		est.PowerSavedWAvg, est.PowerSavedWTotal/1e6, est.EnergySavedJ/1e9)
	fmt.Printf("  compute-bound jobs found in normal mode: %d\n", est.CompNormalJobs)
	fmt.Printf("    -> switch to boost mode: save %v/job avg, %.0f h of compute total\n",
		est.TimeSavedPerJob.Round(time.Second), est.TimeSavedTotal.Hours())
	fmt.Println("\n(paper, full scale: ~750k mem-bound boost jobs -> 450 MW / 14 GJ;")
	fmt.Println(" ~330k comp-bound normal jobs -> ~20 min/job, >1,700 h of compute)")
}
