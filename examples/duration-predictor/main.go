// Duration-predictor demonstrates the paper's future-work claim (§VI):
// "The KNN finds the most similar jobs regardless of the target feature,
// hence we can easily adapt the framework for the prediction of multiple
// features." It reuses the MCBound Feature Encoder unchanged and swaps
// the classifier for a KNN regressor predicting job duration (in log
// space) at submission time, then scores the predictions against the
// real durations of a test week.
//
//	go run ./examples/duration-predictor
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"mcbound/internal/encode"
	"mcbound/internal/fetch"
	"mcbound/internal/ml/knn"
	"mcbound/internal/store"
	"mcbound/internal/workload"
)

func main() {
	cfg := workload.EvalConfig(0.03)
	jobs, err := workload.NewGenerator(cfg, 7).Generate()
	if err != nil {
		log.Fatal(err)
	}
	st := store.New()
	if err := st.Insert(jobs...); err != nil {
		log.Fatal(err)
	}
	fetcher, err := fetch.New(fetch.StoreBackend{Store: st})
	if err != nil {
		log.Fatal(err)
	}

	// Training window: the 30 days before February (the KNN best α).
	trainAt := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	window, err := fetcher.FetchExecuted(context.Background(), trainAt.AddDate(0, 0, -30), trainAt)
	if err != nil {
		log.Fatal(err)
	}
	encoder := encode.NewEncoder(nil, nil)
	targets := make([]float64, len(window))
	for i, j := range window {
		targets[i] = math.Log(j.Duration().Seconds())
	}
	reg := knn.NewRegressor(knn.DefaultConfig())
	if err := reg.Fit(encoder.Encode(window), targets); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted KNN duration regressor on %d executed jobs\n", len(window))

	// Predict the first week of February at submission time.
	week, err := fetcher.FetchSubmitted(context.Background(), trainAt, trainAt.AddDate(0, 0, 7))
	if err != nil {
		log.Fatal(err)
	}
	preds, err := reg.PredictValues(encoder.Encode(week))
	if err != nil {
		log.Fatal(err)
	}

	// Score: absolute log-error quantiles and the fraction within 2x.
	var absErr []float64
	within2x := 0
	for i, j := range week {
		e := math.Abs(preds[i] - math.Log(j.Duration().Seconds()))
		absErr = append(absErr, e)
		if e <= math.Log(2) {
			within2x++
		}
	}
	sort.Float64s(absErr)
	q := func(p float64) float64 {
		return math.Exp(absErr[int(p*float64(len(absErr)-1))])
	}
	fmt.Printf("predicted %d submitted jobs before execution\n\n", len(week))
	fmt.Printf("duration prediction error (multiplicative factor):\n")
	fmt.Printf("  median %.2fx   p75 %.2fx   p90 %.2fx\n", q(0.5), q(0.75), q(0.9))
	fmt.Printf("  within 2x of the true duration: %.1f%%\n",
		100*float64(within2x)/float64(len(week)))
	for i, j := range week[:min(5, len(week))] {
		fmt.Printf("  %s: predicted %s, actual %s\n", j.ID,
			time.Duration(math.Exp(preds[i])*float64(time.Second)).Round(time.Second),
			j.Duration().Round(time.Second))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
