// Command mcbound-gen generates a synthetic Fugaku-like job trace and
// writes it as JSONL — the stand-in for extracting F-DATA from the
// production logs. The output feeds mcbound-server and any offline
// analysis.
//
// Usage:
//
//	mcbound-gen -scale 0.01 -out jobs.jsonl
//	mcbound-gen -eval -scale 0.02 -out eval.jsonl   # Dec–Feb evaluation period
package main

import (
	"flag"
	"fmt"
	"os"

	"mcbound/internal/store"
	"mcbound/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "jobs.jsonl", "output JSONL path ('-' for stdout)")
		scale    = flag.Float64("scale", 0.01, "trace scale (1 = the paper's 2.2M jobs)")
		seed     = flag.Uint64("seed", 7, "master RNG seed")
		evalOnly = flag.Bool("eval", false, "generate the Dec–Feb evaluation period instead of the full Dec–Mar trace")
	)
	flag.Parse()

	if err := run(*out, *scale, *seed, *evalOnly); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-gen:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, seed uint64, evalOnly bool) error {
	var cfg workload.Config
	if evalOnly {
		cfg = workload.EvalConfig(scale)
	} else {
		cfg = workload.DefaultConfig()
		cfg.JobsPerDay = int(float64(cfg.JobsPerDay) * scale)
		if cfg.JobsPerDay < 1 {
			cfg.JobsPerDay = 1
		}
	}
	jobs, err := workload.NewGenerator(cfg, seed).Generate()
	if err != nil {
		return err
	}
	st := store.New()
	if err := st.Insert(jobs...); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d jobs (%s .. %s)\n", len(jobs),
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))
	if out == "-" {
		return st.WriteJSONL(os.Stdout)
	}
	return st.SaveFile(out)
}
