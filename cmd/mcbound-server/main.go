// Command mcbound-server deploys the MCBound framework as an HTTP
// backend (artifact A1, the flask equivalent). It loads a jobs data
// storage from a JSONL trace file (or generates a synthetic one), runs
// an initial Training Workflow, and serves the inference API; an
// optional background ticker re-triggers the Training Workflow (the
// cronjob of §III-E). The server runs with production timeouts, request
// telemetry on GET /metrics, capped request bodies and signal-driven
// graceful shutdown: SIGTERM/SIGINT stop the retraining ticker, drain
// in-flight requests and exit 0.
//
// Usage:
//
//	mcbound-server -trace jobs.jsonl -model rf -alpha 15 -port 8080
//	mcbound-server -generate -scale 0.01            # demo without a trace file
//	mcbound-server -generate -retrain-every 24h -pprof
//	mcbound-server -generate -data-dir /var/lib/mcbound            # leader
//	mcbound-server -follow http://leader:8080 -data-dir /var/lib/mcbound-f -port 8081
//	mcbound-server -promote-on-start -data-dir /var/lib/mcbound-f  # lead over inherited state
//
// With -node-id and -peers the node runs under the lease-based elector:
// the leader heartbeats a quorum-acknowledged lease, followers detect
// its death and elect a successor unassisted (see DESIGN.md §8.8):
//
//	mcbound-server -generate -data-dir /var/lib/m1 -node-id n1 \
//	    -peers 'n1=http://h1:8080,n2=http://h2:8080,n3=http://h3:8080'
//	mcbound-server -follow http://h1:8080 -data-dir /var/lib/m2 -node-id n2 \
//	    -peers 'n1=http://h1:8080,n2=http://h2:8080,n3=http://h3:8080'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mcbound/internal/admission"
	"mcbound/internal/cluster"
	"mcbound/internal/core"
	"mcbound/internal/election"
	"mcbound/internal/encode"
	"mcbound/internal/experiments"
	"mcbound/internal/fetch"
	"mcbound/internal/fetch/chaos"
	"mcbound/internal/httpapi"
	"mcbound/internal/job"
	"mcbound/internal/ml/knn"
	"mcbound/internal/repl"
	"mcbound/internal/replay"
	"mcbound/internal/resilience"
	"mcbound/internal/store"
	"mcbound/internal/telemetry"
	"mcbound/internal/wal"
	"mcbound/internal/workload"
)

type options struct {
	trace        string
	generate     bool
	scale        float64
	seed         uint64
	model        string
	index        string
	nprobe       int
	alpha, beta  int
	modelDir     string
	port         int
	trainAt      string
	maxBody      int64
	pprof        bool
	retrainEvery time.Duration
	drainTimeout time.Duration
	encodeCache  int

	// Overload protection.
	maxConcurrency  int
	queueDepth      int
	defaultDeadline time.Duration
	rateLimit       float64

	// Resilient fetch layer.
	fetchAttempts    int
	fetchBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	// Fault injection (testing the degraded paths end to end).
	chaosRate float64
	chaosSeed uint64

	// Durable job store (write-ahead log + snapshots).
	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	segmentBytes  int64
	snapshotEvery int

	// Streaming surface + server-side replay resource.
	streamBatch  int
	sseBuffer    int
	sseHeartbeat time.Duration
	replaySource string

	// Replication.
	follow         string
	followPoll     time.Duration
	maxLag         time.Duration
	promoteOnStart bool
	retrainJitter  float64

	// Leader election (self-driving failover).
	nodeID          string
	peers           string
	leaseTTL        time.Duration
	heartbeatEvery  time.Duration
	electionTimeout time.Duration
	maxMissed       int
}

func main() {
	var o options
	flag.StringVar(&o.trace, "trace", "", "JSONL trace file backing the jobs data storage")
	flag.BoolVar(&o.generate, "generate", false, "generate a synthetic trace instead of loading one")
	flag.Float64Var(&o.scale, "scale", 0.01, "synthetic trace scale (with -generate)")
	flag.Uint64Var(&o.seed, "seed", 7, "synthetic trace seed (with -generate)")
	flag.StringVar(&o.model, "model", "rf", "classification model: rf or knn")
	flag.StringVar(&o.index, "index", "auto", "KNN IVF index switch: auto (build above the group threshold), on, off")
	flag.IntVar(&o.nprobe, "nprobe", 0, "IVF cells scanned per query (0 = index default)")
	flag.IntVar(&o.alpha, "alpha", 15, "training window in days")
	flag.IntVar(&o.beta, "beta", 1, "retraining period in days")
	flag.StringVar(&o.modelDir, "model-dir", "", "directory for versioned model files (empty = no persistence)")
	flag.IntVar(&o.port, "port", 8080, "listen port")
	flag.StringVar(&o.trainAt, "train-at", "", "reference instant (RFC 3339) for the initial training window; default = newest job completion")
	flag.Int64Var(&o.maxBody, "max-body-bytes", httpapi.DefaultMaxBodyBytes, "request body size cap in bytes")
	flag.BoolVar(&o.pprof, "pprof", false, "expose /debug/pprof/* on the API port")
	flag.DurationVar(&o.retrainEvery, "retrain-every", 0, "wall-clock retraining period for the cron ticker (0 = disabled)")
	flag.DurationVar(&o.drainTimeout, "shutdown-timeout", httpapi.DefaultDrainTimeout, "in-flight request drain budget on shutdown")
	flag.IntVar(&o.encodeCache, "encode-cache", encode.DefaultCacheCapacity, "embedding cache capacity in entries (0 = disabled)")
	flag.IntVar(&o.maxConcurrency, "max-concurrency", 64, "hard ceiling on concurrent requests (the adaptive limit stays below it)")
	flag.IntVar(&o.queueDepth, "queue-depth", 128, "admission wait-queue capacity across all priority tiers")
	flag.DurationVar(&o.defaultDeadline, "default-deadline", httpapi.DefaultDeadline, "per-request deadline for interactive routes (X-Request-Timeout overrides, clamped)")
	flag.Float64Var(&o.rateLimit, "rate-limit", 0, "per-client admission rate in requests/second (0 = disabled)")
	flag.IntVar(&o.fetchAttempts, "fetch-attempts", 4, "attempts per storage query (retries with jittered exponential backoff)")
	flag.DurationVar(&o.fetchBackoff, "fetch-backoff", 50*time.Millisecond, "base backoff between storage query retries")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 5, "consecutive storage failures before the circuit breaker opens")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 10*time.Second, "open-breaker cooldown before a half-open probe")
	flag.Float64Var(&o.chaosRate, "chaos-rate", 0, "inject transient storage faults at this rate in [0,1] (testing only)")
	flag.Uint64Var(&o.chaosSeed, "chaos-seed", 1, "fault-injection schedule seed (with -chaos-rate)")
	flag.StringVar(&o.dataDir, "data-dir", "", "directory for the durable job store (WAL + snapshots); empty = in-memory only. Existing durable state wins over -trace/-generate")
	flag.StringVar(&o.fsync, "fsync", "always", "WAL durability point for POST /v1/jobs: always | interval | never")
	flag.DurationVar(&o.fsyncInterval, "fsync-interval", wal.DefaultFsyncInterval, "background fsync period (with -fsync interval)")
	flag.Int64Var(&o.segmentBytes, "segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation size in bytes")
	flag.IntVar(&o.snapshotEvery, "snapshot-every", 50000, "snapshot+compact the WAL after this many logged records (0 = never)")
	flag.IntVar(&o.streamBatch, "stream-batch", httpapi.DefaultStreamBatch, "NDJSON ingest records grouped per commit/ack frame on POST /v1/jobs/stream")
	flag.IntVar(&o.sseBuffer, "sse-buffer", httpapi.DefaultSSEBuffer, "prediction stream resume-ring and per-subscriber channel capacity")
	flag.DurationVar(&o.sseHeartbeat, "sse-heartbeat", httpapi.DefaultSSEHeartbeat, "idle keep-alive period on GET /v1/predictions/stream")
	flag.StringVar(&o.replaySource, "replay-source", "", "JSONL trace file backing the /v1/replay resource (empty = replay disabled)")
	flag.StringVar(&o.follow, "follow", "", "leader base URL to replicate from (follower mode: read-only API, writes answer not_leader)")
	flag.DurationVar(&o.followPoll, "follow-poll", 250*time.Millisecond, "manifest poll cadence in follower mode")
	flag.DurationVar(&o.maxLag, "max-lag", 15*time.Second, "replication lag before follower /healthz reports lagging")
	flag.BoolVar(&o.promoteOnStart, "promote-on-start", false, "boot as leader over an inherited -data-dir with a bumped fencing epoch (fences the previous leader)")
	flag.Float64Var(&o.retrainJitter, "retrain-jitter", core.DefaultRetrainJitter, "fraction of -retrain-every each cron interval is jittered by (seeded; 0 = fixed period)")
	flag.StringVar(&o.nodeID, "node-id", "", "this node's stable ID in the -peers list (enables the lease-based elector)")
	flag.StringVar(&o.peers, "peers", "", "static cluster membership as id=url,id=url,... (must include -node-id)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 3*time.Second, "leadership lease TTL: quorum acks older than this fence the write path")
	flag.DurationVar(&o.heartbeatEvery, "heartbeat-every", 500*time.Millisecond, "follower lease-poll / leader lease-refresh cadence")
	flag.DurationVar(&o.electionTimeout, "election-timeout", time.Second, "base election backoff; each candidate draws uniformly from [T, 2T)")
	flag.IntVar(&o.maxMissed, "max-missed", 3, "consecutive missed heartbeats before a follower suspects the leader")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-server:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	// SIGTERM/SIGINT trigger the graceful-shutdown path below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	following := o.follow != ""
	if following && o.promoteOnStart {
		return fmt.Errorf("-follow and -promote-on-start are mutually exclusive: promote a running follower via POST /v1/promote, or restart without -follow")
	}
	if o.promoteOnStart && o.dataDir == "" {
		return fmt.Errorf("-promote-on-start requires -data-dir (the inherited durable state to lead over)")
	}

	var st *store.Store
	switch {
	case o.generate:
		log.Printf("generating synthetic trace (scale=%g, seed=%d)...", o.scale, o.seed)
		env, err := experiments.NewEnv(workload.EvalConfig(o.scale), o.seed)
		if err != nil {
			return err
		}
		st = env.Store
	case o.trace != "":
		log.Printf("loading trace %s...", o.trace)
		var err error
		st, err = store.LoadFile(o.trace)
		if err != nil {
			return err
		}
	case following:
		// A follower needs no seed: its store fills from the leader's
		// stream. A warm start below may still shortcut the bootstrap.
		st = store.New()
	default:
		return fmt.Errorf("either -trace, -generate or -follow is required")
	}
	log.Printf("jobs data storage ready: %d jobs", st.Len())

	reg := telemetry.NewRegistry()

	// Durable job store: replay snapshot + WAL from -data-dir before
	// serving, then route every insert through the log. On the first
	// boot the trace/synthetic store seeds the initial snapshot; on
	// later boots the durable state is authoritative and the seed is
	// ignored. A follower does not open the log for writing — its
	// -data-dir is only warm-start state and the promotion target.
	var durable *store.Durable
	var durOpts store.DurableOptions
	if o.dataDir != "" {
		policy, err := wal.ParsePolicy(o.fsync)
		if err != nil {
			return fmt.Errorf("bad -fsync: %w", err)
		}
		walHist := reg.Histogram("mcbound_wal_append_seconds",
			"WAL append latency per acknowledged batch (reserve to durability point).",
			telemetry.ExponentialBuckets(1e-5, 4, 10), nil)
		durOpts = store.DurableOptions{
			SegmentBytes:   o.segmentBytes,
			Policy:         policy,
			Interval:       o.fsyncInterval,
			SnapshotEvery:  o.snapshotEvery,
			AppendObserver: walHist.Observe,
			BumpEpoch:      o.promoteOnStart,
		}
		if following {
			// Warm start: replay whatever durable state a previous life
			// of this node left, read-only (no truncation, no rotation,
			// no epoch writes). The follower re-syncs from the leader
			// either way; apply is last-writer-wins in log order, so a
			// stale warm store only saves bootstrap bytes, never wins.
			if _, statErr := os.Stat(o.dataDir); statErr == nil {
				warm, rec, lerr := store.LoadReadOnly(o.dataDir, wal.OS)
				if lerr != nil {
					log.Printf("warning: warm start from %s failed, bootstrapping cold: %v", o.dataDir, lerr)
				} else {
					st = warm
					log.Printf("warm start from %s: %d jobs (recovery %s)", o.dataDir, st.Len(), rec.Outcome())
				}
			}
		} else {
			durable, err = store.OpenDurable(o.dataDir, st, durOpts)
			if err != nil {
				return fmt.Errorf("open durable store %s: %w", o.dataDir, err)
			}
			defer func() {
				if cerr := durable.Close(); cerr != nil {
					log.Printf("warning: durable store close: %v", cerr)
				}
			}()
			rec := durable.Recovery()
			log.Printf("durable store %s: recovery %s (%d snapshot + %d log records, fsync=%s, epoch=%d)",
				o.dataDir, rec.Outcome(), rec.SnapshotRecords, rec.SegmentRecords, policy, durable.WAL().Epoch())
			if rec.Failure != nil {
				log.Printf("warning: serving the clean prefix only — a corrupt WAL segment was quarantined: %v", rec.Failure)
			}
			st = durable.Store()
			log.Printf("durable jobs data storage ready: %d jobs", st.Len())
		}
	}

	// Static membership, parsed up front when configured: the elector
	// needs it, and the replication client uses it as the redirect
	// allowlist — a 421 Location pointing at a non-member is refused.
	var members cluster.Membership
	if o.peers != "" || o.nodeID != "" {
		if o.peers == "" || o.nodeID == "" {
			return fmt.Errorf("-node-id and -peers go together (got node-id=%q peers=%q)", o.nodeID, o.peers)
		}
		var merr error
		members, merr = cluster.ParsePeers(o.nodeID, o.peers)
		if merr != nil {
			return fmt.Errorf("bad -peers: %w", merr)
		}
	}

	// Replication topology. A leader with a durable log serves the WAL-
	// shipping surface (GET /v1/wal/segments...); a follower tails it,
	// applying every CRC-verified frame through the same path as crash
	// recovery, and carries the plan to take over on POST /v1/promote.
	var node *repl.Node
	var follower *repl.Follower
	var replClient *repl.Client
	if following {
		ccfg := repl.ClientConfig{
			BaseURL: o.follow,
			Retry: resilience.Policy{
				MaxAttempts: o.fetchAttempts,
				BaseDelay:   o.fetchBackoff,
			},
			Breaker: resilience.BreakerConfig{
				FailureThreshold: o.breakerThreshold,
				Cooldown:         o.breakerCooldown,
			},
			Seed: o.seed,
			// One process-wide bucket: however many goroutines end up
			// retrying against the leader, their total retry amplification
			// stays a fraction of the success rate.
			Budget: resilience.NewBudget(resilience.BudgetConfig{}),
		}
		if members.Size() > 0 {
			ccfg.Allowed = members.ContainsURL
		}
		replClient = repl.NewClient(ccfg)
		var err error
		follower, err = repl.NewFollower(repl.FollowerConfig{
			Client: replClient,
			Apply: func(payload []byte) error {
				var j job.Job
				if jerr := json.Unmarshal(payload, &j); jerr != nil {
					return jerr
				}
				return st.Insert(&j)
			},
			Poll: o.followPoll,
			// Seeded ±jitter keeps a fleet of followers from polling the
			// leader in lockstep.
			Seed:   o.seed,
			MaxLag: o.maxLag,
			Logf:   log.Printf,
		})
		if err != nil {
			return err
		}
		node = repl.NewFollowerNode(follower, o.follow, repl.PromotePlan{
			Dir:     o.dataDir,
			Store:   st,
			Options: durOpts,
		})
	} else if durable != nil {
		node = repl.NewLeader(durable)
		log.Printf("replication leader: epoch %d, serving WAL at /v1/wal/segments", durable.WAL().Epoch())
	}

	// Lease-based elector: with -node-id/-peers the cluster drives its
	// own failover — the leader's writes are fenced the moment quorum
	// acks go stale, and followers elect a successor unassisted.
	var elector *election.Elector
	if members.Size() > 0 {
		if node == nil {
			return fmt.Errorf("-peers requires a replication role: lead with -data-dir or follow with -follow")
		}
		ecfg := election.Config{
			Members:         members,
			Node:            node,
			LeaseTTL:        o.leaseTTL,
			HeartbeatEvery:  o.heartbeatEvery,
			MaxMissed:       o.maxMissed,
			ElectionTimeout: o.electionTimeout,
			Seed:            o.seed,
			LeaseDir:        o.dataDir,
			Logf:            log.Printf,
		}
		if follower != nil {
			client := replClient
			ecfg.OnLeaderChange = func(u string) {
				node.SetLeaderURL(u)
				client.Redirect(u)
			}
			// Before self-promoting, drain whatever durable prefix the old
			// leader can still serve, so no acknowledged write is left
			// behind a fenced epoch.
			ecfg.BeforePromote = election.FinalDrain(follower, 10*time.Second)
		}
		el, elErr := election.New(ecfg)
		if elErr != nil {
			return fmt.Errorf("election: %w", elErr)
		}
		elector = el
		go elector.Run(ctx)
		defer elector.Stop()
		log.Printf("elector armed: node %s in %d-member cluster (quorum %d, lease %v, heartbeat %v)",
			o.nodeID, members.Size(), members.Quorum(), o.leaseTTL, o.heartbeatEvery)
	}

	// Fetch chain: store → optional fault injection → retries + breaker.
	// The framework and every workflow query the storage through it.
	var backend fetch.Backend = fetch.StoreBackend{Store: st}
	if o.chaosRate > 0 {
		cb := chaos.New(backend, o.chaosSeed)
		cb.SetAll(chaos.Profile{TransientRate: o.chaosRate})
		backend = cb
		log.Printf("fault injection armed: %.0f%% transient rate, seed %d", o.chaosRate*100, o.chaosSeed)
	}
	rcfg := fetch.DefaultResilienceConfig()
	rcfg.Retry.MaxAttempts = o.fetchAttempts
	rcfg.Retry.BaseDelay = o.fetchBackoff
	rcfg.Breaker.FailureThreshold = o.breakerThreshold
	rcfg.Breaker.Cooldown = o.breakerCooldown
	resilient := fetch.NewResilientBackend(backend, rcfg)
	resilient.Instrument(reg)

	cfg := core.DefaultConfig()
	cfg.Model = core.ModelKind(o.model)
	cfg.Alpha, cfg.Beta = o.alpha, o.beta
	cfg.ModelDir = o.modelDir
	cfg.KNN.Index.Mode = knn.IndexMode(o.index)
	cfg.KNN.Index.NProbe = o.nprobe
	fw, err := core.New(cfg, resilient)
	if err != nil {
		return err
	}
	if err := fw.SetIndexOptions(o.index, o.nprobe); err != nil {
		return fmt.Errorf("bad -index/-nprobe: %w", err)
	}
	fw.Encoder().SetCacheCapacity(o.encodeCache)

	// Crash recovery: restore the newest valid persisted model before
	// training, so the server can answer inference even if the initial
	// Training Workflow fails (stale beats dead).
	if o.modelDir != "" {
		switch lrep, err := fw.LoadLatest(); {
		case err != nil:
			log.Printf("no model restored from %s: %v", o.modelDir, err)
		default:
			if len(lrep.Quarantined) > 0 {
				log.Printf("warning: %d corrupted model version(s) quarantined in %s: %v",
					len(lrep.Quarantined), o.modelDir, lrep.Quarantined)
			}
			log.Printf("restored model version %d from %s", lrep.Version, o.modelDir)
		}
	}

	// Follower bootstrap: one synchronous sync round before the initial
	// training, so the first model fits on the leader's data rather than
	// an empty store. A failed round is not fatal — the background loop
	// keeps retrying and /healthz reports the follower disconnected.
	if follower != nil {
		syncCtx, syncCancel := context.WithTimeout(ctx, 30*time.Second)
		if serr := follower.SyncNow(syncCtx); serr != nil {
			log.Printf("warning: initial replication sync failed (leader %s), serving degraded: %v", o.follow, serr)
		} else {
			fs := follower.Status()
			log.Printf("replication bootstrap complete: %d jobs applied, epoch %d, applied_seq %d",
				st.Len(), fs.Epoch, fs.AppliedSeq)
		}
		syncCancel()
		go follower.Run(ctx)
		defer follower.Stop()
	}

	// Initial Training Workflow (the deploy script of §III-E). A failure
	// is no longer fatal: the server comes up degraded — serving the
	// restored model if one loaded, 503 on /healthz otherwise — and the
	// retraining ticker keeps trying.
	now := time.Now().UTC()
	if o.trainAt != "" {
		if now, err = time.Parse(time.RFC3339, o.trainAt); err != nil {
			return fmt.Errorf("bad -train-at: %w", err)
		}
	} else if newest := newestEnd(st); !newest.IsZero() {
		now = newest
	}
	rep, trainErr := fw.Train(ctx, now)
	if trainErr != nil {
		log.Printf("warning: initial training failed, serving degraded: %v", trainErr)
	} else {
		log.Printf("initial model trained: window [%s, %s), %d labeled jobs, %.3fs, version %d",
			rep.WindowStart.Format("2006-01-02"), rep.WindowEnd.Format("2006-01-02"),
			rep.LabeledJobs, rep.TrainDuration.Seconds(), rep.ModelVersion)
	}

	// Overload protection: the admission controller gates every route
	// (and the cron retrain below) so a submission storm degrades into
	// typed 429/503 rejections instead of unbounded queueing.
	adm := admission.NewController(admission.Config{
		MaxConcurrency: o.maxConcurrency,
		QueueDepth:     o.queueDepth,
		RateLimit:      o.rateLimit,
	})

	// Server-side replay resource: a historical trace the operator can
	// drive through this server's own HTTP path at ×N speed via
	// POST /v1/replay. Ground truth for the per-window F1 comes from the
	// framework's roofline characterizer — the same oracle the offline
	// simulator scores against.
	var replayMgr *replay.Manager
	if o.replaySource != "" {
		src, err := store.LoadFile(o.replaySource)
		if err != nil {
			return fmt.Errorf("load -replay-source %s: %w", o.replaySource, err)
		}
		char := fw.Characterizer()
		replayMgr = replay.NewManager(replay.Options{
			Source: src,
			Truth: func(j *job.Job) (job.Label, bool) {
				pt, cerr := char.Characterize(j)
				if cerr != nil {
					return job.Unknown, false
				}
				return pt.Label, true
			},
			Log: log.Default(),
		})
		log.Printf("replay resource armed: %d trace records from %s", src.Len(), o.replaySource)
	}

	api := httpapi.New(fw, st, log.Default(), httpapi.Options{
		MaxBodyBytes:    o.maxBody,
		EnablePprof:     o.pprof,
		Registry:        reg,
		Breaker:         resilient.Breaker(),
		Admission:       adm,
		DefaultDeadline: o.defaultDeadline,
		Durable:         durable,
		Repl:            node,
		Elector:         elector,
		Replay:          replayMgr,
		StreamBatchSize: o.streamBatch,
		SSEBufferSize:   o.sseBuffer,
		SSEHeartbeat:    o.sseHeartbeat,
	})
	if replayMgr != nil {
		replayMgr.SetTarget(api)
	}
	api.ObserveTrain(rep, trainErr)

	// Cron-equivalent retraining ticker: retrain on the newest completed
	// data (a live store advances as POST /v1/jobs delivers records, or
	// as the replication stream applies the leader's). Each interval is
	// drawn from the seeded jittered schedule so a fleet of replicas
	// started together never retrains in lockstep. Stopped by the same
	// signal context that drains the server.
	var wg sync.WaitGroup
	if o.retrainEvery > 0 {
		sched := core.NewRetrainSchedule(o.retrainEvery, o.retrainJitter, o.seed)
		wg.Add(1)
		go func() {
			defer wg.Done()
			timer := time.NewTimer(sched.Next())
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					log.Printf("retraining ticker stopped")
					return
				case <-timer.C:
					timer.Reset(sched.Next())
					at := newestEnd(st)
					if at.IsZero() {
						at = time.Now().UTC()
					}
					// Retraining competes with inference for the same
					// cores: admit it at background priority so it holds
					// at most a quarter of the concurrency budget.
					tk, admErr := adm.Admit(ctx, admission.Background, "cron")
					if admErr != nil {
						log.Printf("cron retraining not admitted: %v", admErr)
						continue
					}
					rep, err := fw.Train(ctx, at)
					tk.Release()
					api.ObserveTrain(rep, err)
					if err != nil {
						log.Printf("cron retraining failed: %v", err)
						continue
					}
					log.Printf("cron retraining: window [%s, %s), %d labeled jobs, version %d",
						rep.WindowStart.Format("2006-01-02"), rep.WindowEnd.Format("2006-01-02"),
						rep.LabeledJobs, rep.ModelVersion)
				}
			}
		}()
	}

	srv := httpapi.NewHTTPServer(fmt.Sprintf(":%d", o.port), api)
	log.Printf("serving on %s (model=%s α=%d β=%d, max_body=%dB, pprof=%t)",
		srv.Addr, o.model, o.alpha, o.beta, o.maxBody, o.pprof)
	err = httpapi.ListenAndServe(ctx, srv, o.drainTimeout)
	wg.Wait()
	// A promotion during this run attached a durable log the boot-time
	// defer does not know about; flush it on the way out.
	if node != nil {
		if d := node.Durable(); d != nil && d != durable {
			if cerr := d.Close(); cerr != nil {
				log.Printf("warning: promoted durable store close: %v", cerr)
			}
		}
	}
	if err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}

func newestEnd(st *store.Store) time.Time {
	var newest time.Time
	for _, j := range st.All() {
		if j.EndTime.After(newest) {
			newest = j.EndTime
		}
	}
	return newest
}
