// Command mcbound-server deploys the MCBound framework as an HTTP
// backend (artifact A1, the flask equivalent). It loads a jobs data
// storage from a JSONL trace file (or generates a synthetic one), runs
// an initial Training Workflow, and serves the inference API; an
// optional background ticker re-triggers the Training Workflow (the
// cronjob of §III-E). The server runs with production timeouts, request
// telemetry on GET /metrics, capped request bodies and signal-driven
// graceful shutdown: SIGTERM/SIGINT stop the retraining ticker, drain
// in-flight requests and exit 0.
//
// Usage:
//
//	mcbound-server -trace jobs.jsonl -model rf -alpha 15 -port 8080
//	mcbound-server -generate -scale 0.01            # demo without a trace file
//	mcbound-server -generate -retrain-every 24h -pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/encode"
	"mcbound/internal/experiments"
	"mcbound/internal/fetch"
	"mcbound/internal/httpapi"
	"mcbound/internal/store"
	"mcbound/internal/workload"
)

type options struct {
	trace        string
	generate     bool
	scale        float64
	seed         uint64
	model        string
	alpha, beta  int
	modelDir     string
	port         int
	trainAt      string
	maxBody      int64
	pprof        bool
	retrainEvery time.Duration
	drainTimeout time.Duration
	encodeCache  int
}

func main() {
	var o options
	flag.StringVar(&o.trace, "trace", "", "JSONL trace file backing the jobs data storage")
	flag.BoolVar(&o.generate, "generate", false, "generate a synthetic trace instead of loading one")
	flag.Float64Var(&o.scale, "scale", 0.01, "synthetic trace scale (with -generate)")
	flag.Uint64Var(&o.seed, "seed", 7, "synthetic trace seed (with -generate)")
	flag.StringVar(&o.model, "model", "rf", "classification model: rf or knn")
	flag.IntVar(&o.alpha, "alpha", 15, "training window in days")
	flag.IntVar(&o.beta, "beta", 1, "retraining period in days")
	flag.StringVar(&o.modelDir, "model-dir", "", "directory for versioned model files (empty = no persistence)")
	flag.IntVar(&o.port, "port", 8080, "listen port")
	flag.StringVar(&o.trainAt, "train-at", "", "reference instant (RFC 3339) for the initial training window; default = newest job completion")
	flag.Int64Var(&o.maxBody, "max-body-bytes", httpapi.DefaultMaxBodyBytes, "request body size cap in bytes")
	flag.BoolVar(&o.pprof, "pprof", false, "expose /debug/pprof/* on the API port")
	flag.DurationVar(&o.retrainEvery, "retrain-every", 0, "wall-clock retraining period for the cron ticker (0 = disabled)")
	flag.DurationVar(&o.drainTimeout, "shutdown-timeout", httpapi.DefaultDrainTimeout, "in-flight request drain budget on shutdown")
	flag.IntVar(&o.encodeCache, "encode-cache", encode.DefaultCacheCapacity, "embedding cache capacity in entries (0 = disabled)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-server:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	// SIGTERM/SIGINT trigger the graceful-shutdown path below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var st *store.Store
	switch {
	case o.generate:
		log.Printf("generating synthetic trace (scale=%g, seed=%d)...", o.scale, o.seed)
		env, err := experiments.NewEnv(workload.EvalConfig(o.scale), o.seed)
		if err != nil {
			return err
		}
		st = env.Store
	case o.trace != "":
		log.Printf("loading trace %s...", o.trace)
		var err error
		st, err = store.LoadFile(o.trace)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -trace or -generate is required")
	}
	log.Printf("jobs data storage ready: %d jobs", st.Len())

	cfg := core.DefaultConfig()
	cfg.Model = core.ModelKind(o.model)
	cfg.Alpha, cfg.Beta = o.alpha, o.beta
	cfg.ModelDir = o.modelDir
	fw, err := core.New(cfg, fetch.StoreBackend{Store: st})
	if err != nil {
		return err
	}
	fw.Encoder().SetCacheCapacity(o.encodeCache)

	// Initial Training Workflow (the deploy script of §III-E).
	now := time.Now().UTC()
	if o.trainAt != "" {
		if now, err = time.Parse(time.RFC3339, o.trainAt); err != nil {
			return fmt.Errorf("bad -train-at: %w", err)
		}
	} else if newest := newestEnd(st); !newest.IsZero() {
		now = newest
	}
	rep, err := fw.Train(ctx, now)
	if err != nil {
		return err
	}
	log.Printf("initial model trained: window [%s, %s), %d labeled jobs, %.3fs, version %d",
		rep.WindowStart.Format("2006-01-02"), rep.WindowEnd.Format("2006-01-02"),
		rep.LabeledJobs, rep.TrainDuration.Seconds(), rep.ModelVersion)

	api := httpapi.New(fw, st, log.Default(), httpapi.Options{
		MaxBodyBytes: o.maxBody,
		EnablePprof:  o.pprof,
	})
	api.ObserveTrain(rep, nil)

	// Cron-equivalent retraining ticker: retrain on the newest completed
	// data (a live store advances as POST /v1/jobs delivers records).
	// Stopped by the same signal context that drains the server.
	var wg sync.WaitGroup
	if o.retrainEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(o.retrainEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					log.Printf("retraining ticker stopped")
					return
				case <-ticker.C:
					at := newestEnd(st)
					if at.IsZero() {
						at = time.Now().UTC()
					}
					rep, err := fw.Train(ctx, at)
					api.ObserveTrain(rep, err)
					if err != nil {
						log.Printf("cron retraining failed: %v", err)
						continue
					}
					log.Printf("cron retraining: window [%s, %s), %d labeled jobs, version %d",
						rep.WindowStart.Format("2006-01-02"), rep.WindowEnd.Format("2006-01-02"),
						rep.LabeledJobs, rep.ModelVersion)
				}
			}
		}()
	}

	srv := httpapi.NewHTTPServer(fmt.Sprintf(":%d", o.port), api)
	log.Printf("serving on %s (model=%s α=%d β=%d, max_body=%dB, pprof=%t)",
		srv.Addr, o.model, o.alpha, o.beta, o.maxBody, o.pprof)
	err = httpapi.ListenAndServe(ctx, srv, o.drainTimeout)
	wg.Wait()
	if err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}

func newestEnd(st *store.Store) time.Time {
	var newest time.Time
	for _, j := range st.All() {
		if j.EndTime.After(newest) {
			newest = j.EndTime
		}
	}
	return newest
}
