// Command mcbound-server deploys the MCBound framework as an HTTP
// backend (artifact A1, the flask equivalent). It loads a jobs data
// storage from a JSONL trace file (or generates a synthetic one), runs
// an initial Training Workflow, and serves the inference API; a
// background ticker re-triggers the Training Workflow every β days of
// trace time (the cronjob of §III-E).
//
// Usage:
//
//	mcbound-server -trace jobs.jsonl -model rf -alpha 15 -port 8080
//	mcbound-server -generate -scale 0.01            # demo without a trace file
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/experiments"
	"mcbound/internal/fetch"
	"mcbound/internal/store"
	"mcbound/internal/workload"

	"mcbound/internal/httpapi"
)

func main() {
	var (
		trace    = flag.String("trace", "", "JSONL trace file backing the jobs data storage")
		generate = flag.Bool("generate", false, "generate a synthetic trace instead of loading one")
		scale    = flag.Float64("scale", 0.01, "synthetic trace scale (with -generate)")
		seed     = flag.Uint64("seed", 7, "synthetic trace seed (with -generate)")
		model    = flag.String("model", "rf", "classification model: rf or knn")
		alpha    = flag.Int("alpha", 15, "training window in days")
		beta     = flag.Int("beta", 1, "retraining period in days")
		modelDir = flag.String("model-dir", "", "directory for versioned model files (empty = no persistence)")
		port     = flag.Int("port", 8080, "listen port")
		trainAt  = flag.String("train-at", "", "reference instant (RFC 3339) for the initial training window; default = newest job completion")
	)
	flag.Parse()

	if err := run(*trace, *generate, *scale, *seed, *model, *alpha, *beta, *modelDir, *port, *trainAt); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-server:", err)
		os.Exit(1)
	}
}

func run(trace string, generate bool, scale float64, seed uint64, model string, alpha, beta int, modelDir string, port int, trainAt string) error {
	var st *store.Store
	switch {
	case generate:
		log.Printf("generating synthetic trace (scale=%g, seed=%d)...", scale, seed)
		env, err := experiments.NewEnv(workload.EvalConfig(scale), seed)
		if err != nil {
			return err
		}
		st = env.Store
	case trace != "":
		log.Printf("loading trace %s...", trace)
		var err error
		st, err = store.LoadFile(trace)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -trace or -generate is required")
	}
	log.Printf("jobs data storage ready: %d jobs", st.Len())

	cfg := core.DefaultConfig()
	cfg.Model = core.ModelKind(model)
	cfg.Alpha, cfg.Beta = alpha, beta
	cfg.ModelDir = modelDir
	fw, err := core.New(cfg, fetch.StoreBackend{Store: st})
	if err != nil {
		return err
	}

	// Initial Training Workflow (the deploy script of §III-E).
	now := time.Now().UTC()
	if trainAt != "" {
		if now, err = time.Parse(time.RFC3339, trainAt); err != nil {
			return fmt.Errorf("bad -train-at: %w", err)
		}
	} else if newest := newestEnd(st); !newest.IsZero() {
		now = newest
	}
	rep, err := fw.Train(now)
	if err != nil {
		return err
	}
	log.Printf("initial model trained: window [%s, %s), %d labeled jobs, %.3fs, version %d",
		rep.WindowStart.Format("2006-01-02"), rep.WindowEnd.Format("2006-01-02"),
		rep.LabeledJobs, rep.TrainDuration.Seconds(), rep.ModelVersion)

	srv := httpapi.New(fw, st, log.Default())
	addr := fmt.Sprintf(":%d", port)
	log.Printf("serving on %s (model=%s α=%d β=%d)", addr, model, alpha, beta)
	return http.ListenAndServe(addr, srv)
}

func newestEnd(st *store.Store) time.Time {
	var newest time.Time
	for _, j := range st.All() {
		if j.EndTime.After(newest) {
			newest = j.EndTime
		}
	}
	return newest
}
