// Command mcbound-eval reproduces the online prediction algorithm
// evaluation of the paper (artifact A3): Figures 6–10, the α⁺ experiment
// and the baseline comparison, over the synthetic Fugaku-like trace.
//
// Usage:
//
//	mcbound-eval -exp alpha-beta            # Fig. 6 (+ Figs. 7–8 timing)
//	mcbound-eval -exp alpha-plus            # §V.C.b
//	mcbound-eval -exp theta                 # Figs. 9–10
//	mcbound-eval -exp baseline              # §V.C.a comparison
//	mcbound-eval -exp all
//
// The -scale flag shrinks the trace (1 = the paper's ≈25K jobs/day).
package main

import (
	"flag"
	"fmt"
	"os"

	"mcbound/internal/experiments"
	"mcbound/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: alpha-beta, alpha-plus, theta, baseline, features, all")
		scale = flag.Float64("scale", 0.02, "trace scale relative to the paper's job volume")
		seed  = flag.Uint64("seed", 7, "master RNG seed")
	)
	flag.Parse()

	if err := run(*exp, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-eval:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, seed uint64) error {
	fmt.Printf("generating evaluation trace (scale=%g, seed=%d)...\n", scale, seed)
	env, err := experiments.NewEnv(workload.EvalConfig(scale), seed)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d jobs, %d days\n\n", len(env.Jobs), int(env.Cfg.End.Sub(env.Cfg.Start).Hours()/24))

	switch exp {
	case "alpha-beta":
		return experiments.ReportAlphaBeta(os.Stdout, env, seed)
	case "alpha-plus":
		return experiments.ReportAlphaPlus(os.Stdout, env, seed)
	case "theta":
		return experiments.ReportTheta(os.Stdout, env, seed)
	case "baseline":
		return experiments.ReportBaseline(os.Stdout, env, seed)
	case "features":
		return experiments.ReportFeatures(os.Stdout, env, seed)
	case "all":
		for _, f := range []func() error{
			func() error { return experiments.ReportAlphaBeta(os.Stdout, env, seed) },
			func() error { return experiments.ReportBaseline(os.Stdout, env, seed) },
			func() error { return experiments.ReportFeatures(os.Stdout, env, seed) },
			func() error { return experiments.ReportAlphaPlus(os.Stdout, env, seed) },
			func() error { return experiments.ReportTheta(os.Stdout, env, seed) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
