// Command mcbound-router is the cluster front door: a health-aware
// HTTP router in front of an mcbound-server fleet. Reads spread across
// fresh followers (rendezvous-hashed per client, hedged against the
// fleet's p95, budget-bounded retries); writes forward to the
// lease-holding leader and chase 421 redirects within the membership.
// When no leader exists, writes fail fast with a typed 503 while reads
// keep serving from the freshest follower.
//
//	mcbound-router -port 8000 \
//	  -peers n1=http://localhost:8080,n2=http://localhost:8081,n3=http://localhost:8082
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"mcbound/internal/cluster"
	"mcbound/internal/httpapi"
	"mcbound/internal/resilience"
	"mcbound/internal/router"
	"mcbound/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		port             = flag.Int("port", 8000, "port to listen on")
		peers            = flag.String("peers", "", "backend fleet as id=url,id=url,... (required)")
		maxReadLag       = flag.Duration("max-read-lag", router.DefaultMaxReadLag, "followers lagging more than this are excluded from reads")
		hedgeMin         = flag.Duration("hedge-min", router.DefaultHedgeAfterMin, "floor for the adaptive hedge delay")
		maxRetries       = flag.Int("max-retries", router.DefaultMaxRetries, "extra read attempts after the first (each also needs a budget token)")
		budgetTokens     = flag.Float64("retry-budget", resilience.DefaultBudgetTokens, "retry budget bucket capacity")
		budgetRatio      = flag.Float64("retry-budget-ratio", resilience.DefaultBudgetRatio, "tokens refilled per successful request")
		ejectThreshold   = flag.Int("eject-threshold", router.DefaultEjectThreshold, "consecutive failures that eject a backend")
		ejectCooldown    = flag.Duration("eject-cooldown", router.DefaultEjectCooldown, "base ejection cooldown (jittered ×[0.5,1.5))")
		maxEjectFraction = flag.Float64("max-eject-fraction", router.DefaultMaxEjectFraction, "cap on the ejected share of the fleet")
		pollEvery        = flag.Duration("poll-every", router.DefaultPollEvery, "backend health probe period")
		forwardTimeout   = flag.Duration("forward-timeout", router.DefaultForwardTimeout, "per-attempt proxy deadline (streams exempt)")
		maxBodyBytes     = flag.Int64("max-body-bytes", router.DefaultMaxBodyBytes, "largest write body the router will buffer")
		drainTimeout     = flag.Duration("drain-timeout", httpapi.DefaultDrainTimeout, "graceful shutdown drain window")
		seed             = flag.Uint64("seed", 1, "seed for jitter and sampling determinism")
	)
	flag.Parse()

	if *peers == "" {
		return fmt.Errorf("-peers is required (the router fronts an existing fleet)")
	}
	members, err := cluster.ParseMemberList(*peers)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmsgprefix)
	reg := telemetry.NewRegistry()
	rt, err := router.New(router.Config{
		Backends:         members,
		MaxReadLag:       *maxReadLag,
		HedgeAfterMin:    *hedgeMin,
		MaxRetries:       *maxRetries,
		RetryBudget:      resilience.BudgetConfig{Tokens: *budgetTokens, Ratio: *budgetRatio},
		EjectThreshold:   *ejectThreshold,
		EjectCooldown:    *ejectCooldown,
		MaxEjectFraction: *maxEjectFraction,
		PollEvery:        *pollEvery,
		ForwardTimeout:   *forwardTimeout,
		MaxBodyBytes:     *maxBodyBytes,
		Seed:             *seed,
		Registry:         reg,
		Logf:             logger.Printf,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)

	// The router's own server carries SSE streams, so unlike the API
	// server it must not set a WriteTimeout; ForwardTimeout bounds the
	// non-streaming attempts instead.
	srv := &http.Server{
		Addr:              fmt.Sprintf(":%d", *port),
		Handler:           rt,
		ReadHeaderTimeout: httpapi.DefaultReadHeaderTimeout,
		IdleTimeout:       httpapi.DefaultIdleTimeout,
	}
	logger.Printf("mcbound-router listening on :%d fronting %d backends (hedge ≥ %v, budget %.0f tokens, eject after %d fails)",
		*port, len(members), *hedgeMin, *budgetTokens, *ejectThreshold)
	return httpapi.ListenAndServe(ctx, srv, *drainTimeout)
}
