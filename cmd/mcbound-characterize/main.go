// Command mcbound-characterize reproduces the §IV characterization and
// analysis of the Fugaku trace (artifact A2): Figures 2–5 and Table II,
// over the synthetic full-period trace (December 2023 – March 2024).
//
// Usage:
//
//	mcbound-characterize                  # everything, full scale (~2.2M jobs)
//	mcbound-characterize -table 2         # Table II only
//	mcbound-characterize -fig 3 -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"mcbound/internal/experiments"
	"mcbound/internal/workload"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "render a single figure (2-5); 0 = all")
		table = flag.Int("table", 0, "render a single table (2); 0 = all")
		scale = flag.Float64("scale", 1, "trace scale (1 = the paper's 2.2M jobs)")
		seed  = flag.Uint64("seed", 42, "master RNG seed")
	)
	flag.Parse()

	if err := run(*fig, *table, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-characterize:", err)
		os.Exit(1)
	}
}

func run(fig, table int, scale float64, seed uint64) error {
	cfg := workload.DefaultConfig()
	if scale != 1 {
		cfg.JobsPerDay = int(float64(cfg.JobsPerDay) * scale)
		if cfg.JobsPerDay < 1 {
			cfg.JobsPerDay = 1
		}
	}
	fmt.Printf("generating characterization trace (scale=%g, seed=%d)...\n", scale, seed)
	env, err := experiments.NewEnv(cfg, seed)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d jobs, %s .. %s\n", len(env.Jobs),
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))

	sum, err := experiments.Characterize(env)
	if err != nil {
		return err
	}
	fmt.Printf("characterized: %d labeled, %d skipped (%.4f%% skip rate)\n\n",
		sum.Labeled, sum.Skipped, 100*float64(sum.Skipped)/float64(sum.Total))

	all := fig == 0 && table == 0
	ridge := env.Characterizer.RidgePoint()
	if all || fig == 2 {
		sum.WriteFig2(os.Stdout)
	}
	if all || fig == 3 {
		sum.WriteFig3(os.Stdout, ridge)
	}
	if all || fig == 4 {
		sum.WriteFig4(os.Stdout)
	}
	if all || fig == 5 {
		sum.WriteFig5(os.Stdout)
	}
	if all || table == 2 {
		sum.WriteTable2(os.Stdout)
	}
	return nil
}
