// Command mcbound-train is the Training Workflow script of Figure 1: it
// asks a running mcbound-server to retrain its Classification Model on
// the last α days of job data. In the paper this script is re-executed
// by a cronjob every β days.
//
// Usage:
//
//	mcbound-train -server http://localhost:8080 -now 2024-02-01T00:00:00Z
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "MCBound backend base URL")
		now     = flag.String("now", "", "training reference instant (RFC 3339); empty = server wall clock")
		index   = flag.String("index", "", "override the KNN IVF index mode for this and future trains: auto, on, off (empty = leave server config)")
		nprobe  = flag.Int("nprobe", 0, "IVF cells scanned per query; also applied to the live model (0 = leave)")
		timeout = flag.Duration("timeout", 10*time.Minute, "request timeout")
	)
	flag.Parse()

	if err := run(*server, *now, *index, *nprobe, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-train:", err)
		os.Exit(1)
	}
}

func run(server, now, index string, nprobe int, timeout time.Duration) error {
	body, err := json.Marshal(map[string]any{"now": now, "index": index, "nprobe": nprobe})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Post(server+"/v1/train", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %s: %s", resp.Status, payload)
	}
	fmt.Printf("%s\n", payload)
	return nil
}
