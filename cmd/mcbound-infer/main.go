// Command mcbound-infer is the Inference Workflow script of Figure 1: it
// asks a running mcbound-server to classify either one job by id or all
// jobs submitted in a time range, and prints the memory/compute-bound
// predictions.
//
// Usage:
//
//	mcbound-infer -server http://localhost:8080 -job fj000012345
//	mcbound-infer -start 2024-02-01T00:00:00Z -end 2024-02-02T00:00:00Z
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "MCBound backend base URL")
		jobID   = flag.String("job", "", "classify a single job by id")
		start   = flag.String("start", "", "classify jobs submitted from this instant (RFC 3339)")
		end     = flag.String("end", "", "classify jobs submitted before this instant (RFC 3339)")
		timeout = flag.Duration("timeout", 10*time.Minute, "request timeout")
	)
	flag.Parse()

	if err := run(*server, *jobID, *start, *end, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-infer:", err)
		os.Exit(1)
	}
}

func run(server, jobID, start, end string, timeout time.Duration) error {
	var target string
	switch {
	case jobID != "":
		target = server + "/v1/classify/" + url.PathEscape(jobID)
	case start != "" && end != "":
		target = fmt.Sprintf("%s/v1/classify?start=%s&end=%s",
			server, url.QueryEscape(start), url.QueryEscape(end))
	default:
		return fmt.Errorf("either -job or both -start and -end are required")
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %s: %s", resp.Status, payload)
	}
	fmt.Printf("%s\n", payload)
	return nil
}
