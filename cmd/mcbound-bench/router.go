package main

// The router scenario: read latency through the cluster front door on
// a healthy three-node fleet versus the chaos shape the design commits
// to — one backend dead, one 10× slow — plus the router's added cost
// over a direct backend read. The degraded pass must surface zero
// errors to the client (hedges and budget-bounded retries absorb the
// failures) or the whole bench run aborts with exit 1.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"mcbound/internal/cluster"
	"mcbound/internal/resilience"
	"mcbound/internal/router"
)

const (
	routerWarmReads     = 300
	routerDegradedReads = 400
)

// routerBenchNode is a minimal backend for the front-door bench: the
// health document the router probes, instant JSON reads, leader-only
// writes with a 421 redirect — and the two chaos knobs, kill and slow.
type routerBenchNode struct {
	id  string
	srv *httptest.Server

	mu        sync.Mutex
	role      string
	leaderURL string
	down      bool
	delay     time.Duration
}

func newRouterBenchNode(id, role string) *routerBenchNode {
	n := &routerBenchNode{id: id, role: role}
	n.srv = httptest.NewServer(http.HandlerFunc(n.handle))
	return n
}

func (n *routerBenchNode) url() string { return n.srv.URL }

func (n *routerBenchNode) set(fn func(n *routerBenchNode)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n)
}

func (n *routerBenchNode) handle(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	role, leaderURL, down, delay := n.role, n.leaderURL, n.down, n.delay
	n.mu.Unlock()

	if down {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/healthz" {
		doc := map[string]any{
			"status": "ok",
			"replication": map[string]any{
				"role":   role,
				"leader": leaderURL,
				"follower": map[string]any{
					"state": "ok", "replication_lag_seconds": 0.0,
				},
			},
			"cluster": map[string]any{
				"self": n.id, "role": role,
				"lease_held": role == "leader", "leader_url": leaderURL,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
		return
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
	}
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"backend": n.id})
		return
	}
	if role != "leader" {
		w.Header().Set("Location", leaderURL+r.URL.RequestURI())
		w.WriteHeader(http.StatusMisdirectedRequest)
		io.WriteString(w, `{"error":"not the leader","code":"not_leader"}`)
		return
	}
	io.Copy(io.Discard, r.Body)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"backend": n.id, "accepted": true})
}

func benchRouter(rep *report) error {
	fmt.Println("benchmarking cluster front door (healthy vs dead+slow fleet)...")

	n1 := newRouterBenchNode("n1", "leader")
	n2 := newRouterBenchNode("n2", "follower")
	n3 := newRouterBenchNode("n3", "follower")
	defer n1.srv.Close()
	defer n2.srv.Close()
	defer n3.srv.Close()
	lead := n1.url()
	for _, n := range []*routerBenchNode{n1, n2, n3} {
		n.set(func(n *routerBenchNode) { n.leaderURL = lead })
	}

	rt, err := router.New(router.Config{
		Backends: []cluster.Member{
			{ID: "n1", URL: n1.url()},
			{ID: "n2", URL: n2.url()},
			{ID: "n3", URL: n3.url()},
		},
		HedgeAfterMin:  2 * time.Millisecond,
		PollEvery:      50 * time.Millisecond,
		ForwardTimeout: 5 * time.Second,
		RetryBudget:    resilience.BudgetConfig{Tokens: 50, Ratio: 0.1},
		Seed:           20260807,
	})
	if err != nil {
		return err
	}
	rt.RefreshNow(context.Background())
	front := httptest.NewServer(rt)
	defer front.Close()

	read := func(base string, i int) (time.Duration, int, error) {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/model", nil)
		if err != nil {
			return 0, 0, err
		}
		req.Header.Set("X-Client-Id", fmt.Sprintf("tenant-%d", i%23))
		t0 := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return time.Since(t0), 0, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(t0), resp.StatusCode, nil
	}

	// Direct baseline: the same read straight at one healthy backend.
	var direct []time.Duration
	for i := 0; i < routerWarmReads; i++ {
		d, code, err := read(n2.url(), i)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("direct read %d: status %d", i, code)
		}
		direct = append(direct, d)
	}

	// Healthy pass through the router; also fills the hedge reservoirs.
	var healthy []time.Duration
	for i := 0; i < routerWarmReads; i++ {
		d, code, err := read(front.URL, i)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("healthy routed read %d: status %d", i, code)
		}
		healthy = append(healthy, d)
	}
	healthyP50, healthyP99 := durQuantile(healthy, 0.50), durQuantile(healthy, 0.99)
	directP50 := durQuantile(direct, 0.50)

	// Chaos shape: n3 dies, n2 turns 10× slow (floored so a fast local
	// baseline still produces a meaningful delay).
	slowBy := 10 * healthyP99
	if slowBy < 20*time.Millisecond {
		slowBy = 20 * time.Millisecond
	}
	n3.set(func(n *routerBenchNode) { n.down = true })
	n2.set(func(n *routerBenchNode) { n.delay = slowBy })
	rt.RefreshNow(context.Background())

	var degraded []time.Duration
	for i := 0; i < routerDegradedReads; i++ {
		d, code, err := read(front.URL, i)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("degraded routed read %d: status %d — the front door must absorb a dead and a slow backend", i, code)
		}
		degraded = append(degraded, d)
	}

	// A write still lands on the leader through the degraded fleet.
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(`[]`))
	if err != nil {
		return fmt.Errorf("routed write: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("routed write through degraded fleet: status %d", resp.StatusCode)
	}

	rep.RouterHealthyP50Ns = healthyP50.Nanoseconds()
	rep.RouterHealthyP99Ns = healthyP99.Nanoseconds()
	rep.RouterDegradedP50Ns = durQuantile(degraded, 0.50).Nanoseconds()
	rep.RouterDegradedP99Ns = durQuantile(degraded, 0.99).Nanoseconds()
	rep.RouterOverheadNs = (healthyP50 - directP50).Nanoseconds()
	rep.RouterHedges = rt.Hedges()
	rep.RouterRetries = rt.Budget().Retries()

	fmt.Printf("router: healthy p50=%s p99=%s (overhead %s over direct); dead+slow p50=%s p99=%s, %d hedges, %d retries, zero client errors\n",
		time.Duration(rep.RouterHealthyP50Ns), time.Duration(rep.RouterHealthyP99Ns),
		time.Duration(rep.RouterOverheadNs),
		time.Duration(rep.RouterDegradedP50Ns), time.Duration(rep.RouterDegradedP99Ns),
		rep.RouterHedges, rep.RouterRetries)
	return nil
}

// durQuantile returns the nearest-rank quantile of a latency sample.
func durQuantile(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(len(s)-1)*q)]
}
