package main

// The repl scenario: steady-state replication lag and failover cost,
// measured over the live HTTP surface. A leader with a durable store
// serves the WAL-shipping routes; a follower tails it with a tight poll;
// each sampled insert is timed from leader acknowledgment to visibility
// in the follower's store. Then the leader is torn down and the follower
// promoted, timing leader-death → first write acknowledged by the new
// leader. The scenario aborts the bench run if the promoted leader is
// missing any insert the old leader acknowledged.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/fetch"
	"mcbound/internal/httpapi"
	"mcbound/internal/job"
	"mcbound/internal/repl"
	"mcbound/internal/store"
)

func benchRepl(rep *report) error {
	fmt.Println("benchmarking replication (follower lag, failover)...")

	leaderDir, err := os.MkdirTemp("", "mcbound-replbench-lead-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(leaderDir)
	promDir, err := os.MkdirTemp("", "mcbound-replbench-prom-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(promDir)

	lst, err := servingStore()
	if err != nil {
		return err
	}
	dur, err := store.OpenDurable(leaderDir, lst, store.DurableOptions{})
	if err != nil {
		return err
	}
	defer dur.Close()
	fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: lst})
	if err != nil {
		return err
	}
	api := httpapi.New(fw, lst, log.New(io.Discard, "", 0), httpapi.Options{
		Durable: dur,
		Repl:    repl.NewLeader(dur),
	})
	srv := httptest.NewServer(api)
	defer srv.Close()

	fst := store.New()
	follower, err := repl.NewFollower(repl.FollowerConfig{
		Client: repl.NewClient(repl.ClientConfig{BaseURL: srv.URL}),
		Apply: func(payload []byte) error {
			var j job.Job
			if err := json.Unmarshal(payload, &j); err != nil {
				return err
			}
			return fst.Insert(&j)
		},
		Poll: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go follower.Run(ctx)

	waitFor := func(cond func() bool, what string) error {
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("repl bench: timed out waiting for %s", what)
			}
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	}
	if err := waitFor(func() bool { return fst.Len() == lst.Len() }, "bootstrap"); err != nil {
		return err
	}

	// Lag sampling: one acknowledged insert at a time, timed until the
	// follower's live tail makes it readable on the replica.
	const samples = 200
	submit := time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC)
	lags := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		id := fmt.Sprintf("lag%05d", i)
		j := &job.Job{
			ID: id, User: "u0001", Name: "repl_app", Environment: "gcc/12.2",
			CoresRequested: 48, NodesRequested: 1, NodesAllocated: 1,
			FreqRequested: job.FreqNormal,
			SubmitTime:    submit.Add(time.Duration(i) * time.Second),
		}
		t0 := time.Now()
		if err := dur.Insert(j); err != nil {
			return fmt.Errorf("repl bench: leader insert: %w", err)
		}
		if err := waitFor(func() bool { _, gerr := fst.Get(id); return gerr == nil }, id); err != nil {
			return err
		}
		lags = append(lags, time.Since(t0))
	}
	sort.Slice(lags, func(a, b int) bool { return lags[a] < lags[b] })
	rep.ReplLagSamples = samples
	rep.ReplLagP50Ns = lags[samples/2].Nanoseconds()
	rep.ReplLagP99Ns = lags[samples*99/100].Nanoseconds()

	// Failover: every insert so far was acknowledged and the follower is
	// caught up. Kill the leader, promote, and time to the first write
	// the new leader acknowledges.
	ackedIDs := make([]string, 0, lst.Len())
	for _, j := range lst.All() {
		ackedIDs = append(ackedIDs, j.ID)
	}
	rep.ReplFailoverAcked = int64(len(ackedIDs))

	t0 := time.Now()
	srv.CloseClientConnections()
	srv.Close()
	node := repl.NewFollowerNode(follower, srv.URL, repl.PromotePlan{
		Dir:   promDir,
		Store: fst,
	})
	if _, err := node.Promote(); err != nil {
		return fmt.Errorf("repl bench: promote: %w", err)
	}
	prom := node.Durable()
	if prom == nil {
		return fmt.Errorf("repl bench: promotion attached no durable store")
	}
	defer prom.Close()
	if err := prom.Insert(&job.Job{
		ID: "post-failover", User: "u0001", Name: "repl_app", Environment: "gcc/12.2",
		CoresRequested: 48, NodesRequested: 1, NodesAllocated: 1,
		FreqRequested: job.FreqNormal, SubmitTime: submit.Add(time.Hour),
	}); err != nil {
		return fmt.Errorf("repl bench: post-failover insert: %w", err)
	}
	rep.ReplFailoverNs = time.Since(t0).Nanoseconds()

	// The acceptance gate: zero acked loss across the failover.
	pst := prom.Store()
	for _, id := range ackedIDs {
		if _, err := pst.Get(id); err != nil {
			return fmt.Errorf("repl bench: acked insert %s lost across failover", id)
		}
	}

	fmt.Printf("repl: lag p50=%dµs p99=%dµs over %d samples; failover %dms (%d acked records, zero loss)\n",
		rep.ReplLagP50Ns/1e3, rep.ReplLagP99Ns/1e3, samples,
		rep.ReplFailoverNs/1e6, rep.ReplFailoverAcked)
	return nil
}
