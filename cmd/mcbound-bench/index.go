package main

// The index scenario: brute-force vs IVF classify latency and measured
// recall across training-set scales. Each scale generates a synthetic
// trace with internal/workload (the application population grows with
// the scale, and the unique-vector group count with it), labels it with
// the roofline characterizer, encodes it, and trains two KNN
// classifiers on identical data — one exact, one IVF-indexed. Reported
// per scale: single-query classify p50/p99 for both paths, measured
// recall@k of the index against the exact scan, and the p99 speedup.
// The run exits 1 if recall drops below indexRecallGate at any scale —
// the sub-linear claim is regression-gated, not asserted.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"mcbound/internal/encode"
	"mcbound/internal/job"
	"mcbound/internal/linalg"
	"mcbound/internal/ml"
	"mcbound/internal/ml/knn"
	"mcbound/internal/roofline"
	"mcbound/internal/workload"
)

// indexRecallGate is the accuracy floor of the IVF path: measured
// recall@k against brute force must not drop below it at any scale.
const indexRecallGate = 0.95

// indexScaleResult is one row of the sweep in BENCH_serving.json.
type indexScaleResult struct {
	Scale     int `json:"scale"`
	TrainJobs int `json:"train_jobs"`
	Groups    int `json:"groups"`
	Clusters  int `json:"clusters"`
	NProbe    int `json:"nprobe"`

	BruteP50Ns int64 `json:"brute_p50_ns"`
	BruteP99Ns int64 `json:"brute_p99_ns"`
	IVFP50Ns   int64 `json:"ivf_p50_ns"`
	IVFP99Ns   int64 `json:"ivf_p99_ns"`

	Recall     float64 `json:"recall"`
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
}

// benchIndex sweeps training-set size ×1/×10/×100 and fails the whole
// bench run on a recall-gate violation.
func benchIndex(rep *report) error {
	rep.Index = rep.Index[:0]
	for _, scale := range []int{1, 10, 100} {
		fmt.Printf("index scenario: scale ×%d...\n", scale)
		res, err := benchIndexScale(scale)
		if err != nil {
			return fmt.Errorf("index scale ×%d: %w", scale, err)
		}
		rep.Index = append(rep.Index, res)
		fmt.Printf("  ×%d: %d jobs → %d groups, %d clusters; brute p50=%s p99=%s, ivf p50=%s p99=%s, recall=%.4f, p99 speedup ×%.1f\n",
			res.Scale, res.TrainJobs, res.Groups, res.Clusters,
			time.Duration(res.BruteP50Ns), time.Duration(res.BruteP99Ns),
			time.Duration(res.IVFP50Ns), time.Duration(res.IVFP99Ns),
			res.Recall, res.SpeedupP99)
		if res.Recall < indexRecallGate {
			return fmt.Errorf("recall gate failed at scale ×%d: %.4f < %.2f",
				scale, res.Recall, indexRecallGate)
		}
	}
	return nil
}

// indexTrace generates and labels the synthetic training window for one
// scale: a 3-week trace whose application population (and therefore the
// trained group count) grows with the scale factor.
func indexTrace(scale int) ([]*job.Job, error) {
	cfg := workload.DefaultConfig()
	cfg.Start = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2024, 1, 22, 0, 0, 0, 0, time.UTC)
	cfg.MaintenanceStart, cfg.MaintenanceEnd = time.Time{}, time.Time{}
	cfg.JobsPerDay = 55 * scale
	cfg.Users = 30 * scale
	cfg.InitialApps = 140 * scale
	cfg.AppBirthsPerDay = float64(scale)
	cfg.BatchMean = 3
	gen := workload.NewGenerator(cfg, uint64(1000+scale))
	jobs, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	char := roofline.NewCharacterizer(roofline.ModelFor(cfg.Machine))
	char.GenerateLabels(jobs)
	labeled := jobs[:0]
	for _, j := range jobs {
		if j.TrueLabel != job.Unknown {
			labeled = append(labeled, j)
		}
	}
	return labeled, nil
}

func benchIndexScale(scale int) (indexScaleResult, error) {
	var res indexScaleResult
	res.Scale = scale

	jobs, err := indexTrace(scale)
	if err != nil {
		return res, err
	}
	res.TrainJobs = len(jobs)
	enc := encode.NewEncoder(nil, nil)
	x := enc.Encode(jobs)
	y := make([]job.Label, len(jobs))
	for i, j := range jobs {
		y[i] = j.TrueLabel
	}

	const k = 5
	brute := knn.New(knn.Config{K: k, P: 2, Index: knn.IndexConfig{Mode: knn.IndexOff}})
	ivfC := knn.New(knn.Config{K: k, P: 2, Index: knn.IndexConfig{Mode: knn.IndexOn, Seed: 17}})
	if err := brute.Train(x, y); err != nil {
		return res, err
	}
	if err := ivfC.Train(x, y); err != nil {
		return res, err
	}
	res.Groups = brute.Groups()
	info := ivfC.IndexInfo()
	if !info.Enabled {
		return res, fmt.Errorf("indexed classifier built no index (%d groups)", res.Groups)
	}
	res.Clusters, res.NProbe = info.Clusters, info.NProbe

	// Query set: a spread of real trace encodings (every trace job is a
	// plausible future submission), copied out so the trace, the encoder
	// cache, and the raw encoding matrix can be released before the
	// latency runs — at ×100 they hold hundreds of MB whose GC scans
	// would otherwise dominate the measured tail.
	const nq = 256
	queries := make([][]float32, 0, nq)
	for i := 0; i < nq; i++ {
		q := x[(i*7919)%len(x)]
		queries = append(queries, append([]float32(nil), q...))
	}
	jobs, x, y = nil, nil, nil
	runtime.GC()

	// Measured recall@k: the IVF search's group ids against an exact
	// top-k scan over the same trained matrix.
	index := ivfC.VectorIndex()
	data, dim := ivfC.Matrix()
	var hits, total int
	var dst []ml.Candidate
	for _, q := range queries {
		dst = index.Search(q, k, dst)
		got := map[int]bool{}
		for _, c := range dst {
			got[c.ID] = true
		}
		for _, id := range bruteTopK(data, dim, q, k) {
			total++
			if got[id] {
				hits++
			}
		}
	}
	res.Recall = float64(hits) / float64(total)

	res.BruteP50Ns, res.BruteP99Ns, err = classifyQuantiles(brute, queries)
	if err != nil {
		return res, err
	}
	res.IVFP50Ns, res.IVFP99Ns, err = classifyQuantiles(ivfC, queries)
	if err != nil {
		return res, err
	}
	if res.IVFP50Ns > 0 {
		res.SpeedupP50 = float64(res.BruteP50Ns) / float64(res.IVFP50Ns)
	}
	if res.IVFP99Ns > 0 {
		res.SpeedupP99 = float64(res.BruteP99Ns) / float64(res.IVFP99Ns)
	}
	return res, nil
}

// classifyQuantiles measures single-query Predict latency over the
// query set and returns its p50/p99. Each query is timed three times
// keeping the minimum — the percentiles characterize the algorithmic
// cost distribution across queries, not scheduler or GC jitter, which
// would hit both classifiers' tails incomparably.
func classifyQuantiles(c *knn.Classifier, queries [][]float32) (p50, p99 int64, err error) {
	one := make([][]float32, 1)
	for _, q := range queries[:16] { // warm-up
		one[0] = q
		if _, err := c.Predict(one); err != nil {
			return 0, 0, err
		}
	}
	runtime.GC()
	lat := make([]int64, 0, len(queries))
	for _, q := range queries {
		one[0] = q
		best := int64(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := c.Predict(one); err != nil {
				return 0, 0, err
			}
			if ns := time.Since(t0).Nanoseconds(); ns < best {
				best = ns
			}
		}
		lat = append(lat, best)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return quantile(lat, 0.50), quantile(lat, 0.99), nil
}

func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// bruteTopK returns the row ids of the k nearest rows of q under exact
// squared Euclidean distance (ties to the lower id, matching the
// classifier's stable bounded insertion).
func bruteTopK(data []float32, dim int, q []float32, k int) []int {
	type nd struct {
		d  float64
		id int
	}
	n := len(data) / dim
	if k > n {
		k = n
	}
	top := make([]nd, 0, k)
	worst := 0.0
	for i := 0; i < n; i++ {
		d := linalg.SqEuclidean(q, data[i*dim:(i+1)*dim])
		if len(top) == k && d >= worst {
			continue
		}
		pos := len(top)
		if pos < k {
			top = append(top, nd{})
		} else {
			pos--
		}
		for pos > 0 && top[pos-1].d > d {
			top[pos] = top[pos-1]
			pos--
		}
		top[pos] = nd{d: d, id: i}
		worst = top[len(top)-1].d
	}
	out := make([]int, len(top))
	for i, t := range top {
		out[i] = t.id
	}
	return out
}
