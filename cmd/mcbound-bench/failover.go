package main

// The failover scenario: unassisted leader-death recovery time under
// live electors. Each seeded kill boots a fresh three-node cluster
// (leader + two WAL-tailing followers, every node under the lease-based
// elector with tight timings), acknowledges a batch of writes, hard-
// kills the leader, and times leader-death → first write acknowledged
// by the self-elected successor — no operator promote anywhere. The
// scenario aborts the bench run if any acknowledged insert is missing
// on the new leader.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"mcbound/internal/cluster"
	"mcbound/internal/core"
	"mcbound/internal/election"
	"mcbound/internal/fetch"
	"mcbound/internal/httpapi"
	"mcbound/internal/job"
	"mcbound/internal/repl"
	"mcbound/internal/resilience"
	"mcbound/internal/store"
)

const failoverKills = 20

func benchFailover(rep *report) error {
	fmt.Printf("benchmarking unassisted failover (%d seeded leader kills)...\n", failoverKills)
	var times []time.Duration
	var acked int64
	for it := 0; it < failoverKills; it++ {
		d, n, err := failoverOnce(uint64(9000 + it))
		if err != nil {
			return fmt.Errorf("failover kill %d: %w", it, err)
		}
		times = append(times, d)
		acked += int64(n)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	rep.FailoverKills = failoverKills
	rep.FailoverP50Ns = times[len(times)/2].Nanoseconds()
	rep.FailoverP99Ns = times[len(times)*99/100].Nanoseconds()
	rep.FailoverAcked = acked
	fmt.Printf("failover: leader death -> first accepted write p50=%dms p99=%dms over %d kills (%d acked records, zero loss)\n",
		rep.FailoverP50Ns/1e6, rep.FailoverP99Ns/1e6, failoverKills, acked)
	return nil
}

// failoverOnce runs one kill: returns the death-to-first-accepted-write
// duration and how many acknowledged inserts were verified on the
// successor.
func failoverOnce(seed uint64) (time.Duration, int, error) {
	const (
		heartbeat = 10 * time.Millisecond
		leaseTTL  = 100 * time.Millisecond
		electT    = 50 * time.Millisecond
	)
	type fnode struct {
		id   string
		url  string
		srv  *httptest.Server
		st   *store.Store
		node *repl.Node
		el   *election.Elector
		fol  *repl.Follower
		dur  *store.Durable
	}
	ids := []string{"n1", "n2", "n3"}
	srvs := make([]*httptest.Server, 3)
	members := make([]cluster.Member, 3)
	for i := range srvs {
		srvs[i] = httptest.NewUnstartedServer(nil)
		members[i] = cluster.Member{ID: ids[i], URL: "http://" + srvs[i].Listener.Addr().String()}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var nodes []*fnode
	var dirs []string
	defer func() {
		cancel()
		for _, n := range nodes {
			n.el.Stop()
			if n.fol != nil {
				n.fol.Stop()
			}
		}
		for _, n := range nodes {
			n.srv.Close()
			if n.dur != nil {
				n.dur.Close()
			}
			if d := n.node.Durable(); d != nil && d != n.dur {
				d.Close()
			}
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()

	tmpDir := func() (string, error) {
		d, err := os.MkdirTemp("", "mcbound-failover-")
		if err == nil {
			dirs = append(dirs, d)
		}
		return d, err
	}

	for i := range ids {
		n := &fnode{id: ids[i], url: members[i].URL, srv: srvs[i], st: store.New()}
		mem, err := cluster.New(ids[i], members)
		if err != nil {
			return 0, 0, err
		}
		cfg := election.Config{
			Members:         mem,
			LeaseTTL:        leaseTTL,
			HeartbeatEvery:  heartbeat,
			MaxMissed:       2,
			ElectionTimeout: electT,
			RequestTimeout:  400 * time.Millisecond,
			Seed:            seed*131 + uint64(i),
			Transport:       election.NewHTTPTransport(&http.Client{Timeout: 300 * time.Millisecond}, seed+uint64(i)),
		}
		var apiDur *store.Durable
		if i == 0 {
			dir, err := tmpDir()
			if err != nil {
				return 0, 0, err
			}
			dur, err := store.OpenDurable(dir, n.st, store.DurableOptions{})
			if err != nil {
				return 0, 0, err
			}
			n.dur = dur
			n.node = repl.NewLeader(dur)
			apiDur = dur
		} else {
			fst := n.st
			client := repl.NewClient(repl.ClientConfig{
				BaseURL: members[0].URL,
				HTTP:    &http.Client{Timeout: 500 * time.Millisecond},
				Retry: resilience.Policy{
					MaxAttempts: 2,
					BaseDelay:   5 * time.Millisecond,
					MaxDelay:    20 * time.Millisecond,
				},
				Seed: seed*17 + uint64(i),
			})
			fol, err := repl.NewFollower(repl.FollowerConfig{
				Client: client,
				Apply: func(payload []byte) error {
					var j job.Job
					if err := json.Unmarshal(payload, &j); err != nil {
						return err
					}
					return fst.Insert(&j)
				},
				Poll: heartbeat,
				Seed: seed*29 + uint64(i),
			})
			if err != nil {
				return 0, 0, err
			}
			dir, derr := tmpDir()
			if derr != nil {
				return 0, 0, derr
			}
			n.fol = fol
			n.node = repl.NewFollowerNode(fol, members[0].URL, repl.PromotePlan{Dir: dir, Store: fst})
			node := n.node
			cfg.OnLeaderChange = func(u string) {
				node.SetLeaderURL(u)
				client.Redirect(u)
			}
			cfg.BeforePromote = election.FinalDrain(fol, 2*time.Second)
		}
		cfg.Node = n.node
		el, err := election.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		n.el = el
		fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: n.st})
		if err != nil {
			return 0, 0, err
		}
		srvs[i].Config.Handler = httpapi.New(fw, n.st, log.New(io.Discard, "", 0), httpapi.Options{
			Durable: apiDur,
			Repl:    n.node,
			Elector: el,
		})
		srvs[i].Start()
		nodes = append(nodes, n)
	}
	for _, n := range nodes[1:] {
		sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
		err := n.fol.SyncNow(sctx)
		scancel()
		if err != nil {
			return 0, 0, fmt.Errorf("bootstrap sync: %w", err)
		}
		go n.fol.Run(ctx)
	}
	for _, n := range nodes {
		go n.el.Run(ctx)
	}

	// Acknowledge a batch of writes on the live leader.
	hc := &http.Client{Timeout: 500 * time.Millisecond}
	post := func(url, id string) bool {
		body := fmt.Sprintf(
			`[{"id":%q,"name":"failover_app","user":"u0001","cores_req":48,"nodes_req":1,"freq_req":2000,"submit":"2024-06-01T00:00:00Z"}]`,
			id)
		resp, err := hc.Post(url+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	var ackedIDs []string
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("fo-%d-%05d", seed, i)
		if !post(nodes[0].url, id) {
			return 0, 0, fmt.Errorf("pre-kill insert %s not acknowledged", id)
		}
		ackedIDs = append(ackedIDs, id)
	}
	// A dead leader ships nothing: acked-write survival across a hard
	// kill is bounded by replication lag, so wait for the tail to drain
	// before pulling the plug (the chaos suite covers the fenced-alive
	// cases where no quiesce is needed).
	leaderSeq := nodes[0].dur.CommittedSeq()
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := true
		for _, n := range nodes[1:] {
			if n.fol.Status().AppliedSeq < leaderSeq {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("followers never caught up pre-kill")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Kill. No promote call follows — the electors are on their own.
	nodes[0].srv.CloseClientConnections()
	nodes[0].srv.Close()
	nodes[0].el.Stop()
	t0 := time.Now()

	deadline = time.Now().Add(15 * time.Second)
	var winner *fnode
	probe := 0
	for winner == nil {
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("no follower accepted a write within 15s of the kill: n2=%+v n3=%+v",
				nodes[1].el.Status(), nodes[2].el.Status())
		}
		for _, n := range nodes[1:] {
			if post(n.url, fmt.Sprintf("fo-%d-probe-%d", seed, probe)) {
				winner = n
				break
			}
			probe++
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(t0)

	for _, id := range ackedIDs {
		if _, err := winner.st.Get(id); err != nil {
			return 0, 0, fmt.Errorf("acked insert %s lost across unassisted failover to %s", id, winner.id)
		}
	}
	return elapsed, len(ackedIDs), nil
}
