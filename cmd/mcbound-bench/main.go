// Command mcbound-bench measures the serving-path costs of the deployed
// framework — single classify hot and cold in the embedding cache,
// 1000-job batch classify serial vs. across every core, a full
// Training Workflow pass, and the streaming surface (live replay,
// NDJSON ingest, SSE fan-out) — and writes them as JSON
// (BENCH_serving.json by default) so successive commits have a perf
// trajectory to compare number to number.
//
// Usage:
//
//	mcbound-bench -out BENCH_serving.json
//
// The workload mirrors the serving benchmarks in internal/core
// (BenchmarkClassifyBatch, BenchmarkClassifySingle, BenchmarkTrain): a
// deterministic two-app trace whose shallow model keeps the serving
// mechanics — cache lookups, worker fan-out, hot-swap reads — visible
// instead of swamped by tree depth. The derived ratios are the two
// acceptance numbers of the concurrency work: batch_speedup (workers-1
// over workers-max, meaningful on multi-core hosts) and cache_speedup
// (cold over hot single classify).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mcbound/internal/admission"
	"mcbound/internal/core"
	"mcbound/internal/encode"
	"mcbound/internal/fetch"
	"mcbound/internal/httpapi"
	"mcbound/internal/job"
	"mcbound/internal/replay"
	"mcbound/internal/store"
	"mcbound/internal/wal"
	"mcbound/internal/wal/crashfs"
)

// report is the BENCH_serving.json schema.
type report struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	TraceJobs  int    `json:"trace_jobs"`

	// ns/op per workload.
	ClassifySingleHotNs  int64 `json:"classify_single_hot_ns"`
	ClassifySingleColdNs int64 `json:"classify_single_cold_ns"`
	ClassifyBatch1kW1Ns  int64 `json:"classify_batch1k_workers1_ns"`
	ClassifyBatch1kWMxNs int64 `json:"classify_batch1k_workersmax_ns"`
	TrainNs              int64 `json:"train_ns"`

	// Derived ratios.
	CacheSpeedup float64 `json:"cache_speedup"`
	BatchSpeedup float64 `json:"batch_speedup"`

	// Admission-control costs: the fast-path toll every request pays,
	// and the outcome of a synthetic 10× overload burst (the run aborts
	// with exit 1 if the shed accounting does not reconcile exactly).
	AdmitReleaseNs        int64 `json:"admit_release_ns"`
	OverloadOffered       int64 `json:"overload_offered"`
	OverloadAdmitted      int64 `json:"overload_admitted"`
	OverloadShedQueueFull int64 `json:"overload_shed_queue_full"`
	OverloadShedDoomed    int64 `json:"overload_shed_doomed"`

	// Durable-store costs: ns per acknowledged WAL append on a real
	// filesystem, per fsync policy, plus the simulated-kill recovery
	// gate (the run aborts with exit 1 if fsync=always recovery loses
	// an acknowledged record).
	WALAppendAlwaysNs   int64 `json:"wal_append_always_ns"`
	WALAppendIntervalNs int64 `json:"wal_append_interval_ns"`
	WALAppendNeverNs    int64 `json:"wal_append_never_ns"`
	WALKillAcked        int64 `json:"wal_kill_acked_records"`
	WALKillRecovered    int64 `json:"wal_kill_recovered_records"`

	// Streaming surface: an instant-clock replay window driven end to
	// end through the v1 API (the run aborts with exit 1 unless it
	// completes), sustained NDJSON ingest cost per acknowledged record
	// over the live HTTP path, and SSE prediction fan-out cost per
	// delivered event across concurrent subscribers.
	ReplayRecords           int64 `json:"replay_records"`
	ReplayWallNs            int64 `json:"replay_wall_ns"`
	StreamIngestNsPerRecord int64 `json:"stream_ingest_ns_per_record"`
	SSEFanoutSubscribers    int   `json:"sse_fanout_subscribers"`
	SSEFanoutNsPerEvent     int64 `json:"sse_fanout_ns_per_event"`

	// Index-accelerated classification: brute-force vs IVF single-query
	// classify latency and measured recall across training-set scales
	// (the run aborts with exit 1 if any scale's recall drops below the
	// 0.95 gate).
	Index []indexScaleResult `json:"index,omitempty"`

	// Replication: steady-state follower lag (insert acknowledged on the
	// leader → applied on a live-tailing follower) and the wall-clock
	// cost of a failover (leader gone → promoted follower acknowledges
	// its first write). The run aborts with exit 1 if the promoted
	// leader is missing any insert the old leader acknowledged.
	ReplLagSamples    int   `json:"repl_lag_samples"`
	ReplLagP50Ns      int64 `json:"repl_lag_p50_ns"`
	ReplLagP99Ns      int64 `json:"repl_lag_p99_ns"`
	ReplFailoverNs    int64 `json:"repl_failover_ns"`
	ReplFailoverAcked int64 `json:"repl_failover_acked_records"`

	// Self-driving failover: leader-death → first-accepted-write time
	// with live electors and no operator promote, over seeded hard kills
	// of fresh three-node clusters (the run aborts with exit 1 if the
	// self-elected successor lost any acknowledged insert).
	FailoverKills int   `json:"failover_kills"`
	FailoverP50Ns int64 `json:"failover_p50_ns"`
	FailoverP99Ns int64 `json:"failover_p99_ns"`
	FailoverAcked int64 `json:"failover_acked_records"`

	// Cluster front door: read latency through the router on a healthy
	// three-node fleet vs the chaos shape (one backend dead, one 10×
	// slow), the router's p50 cost over a direct backend read, and the
	// hedges/retries that kept the degraded tail flat. The run aborts
	// with exit 1 if any degraded read surfaces an error to the client.
	RouterHealthyP50Ns  int64 `json:"router_healthy_p50_ns"`
	RouterHealthyP99Ns  int64 `json:"router_healthy_p99_ns"`
	RouterDegradedP50Ns int64 `json:"router_degraded_p50_ns"`
	RouterDegradedP99Ns int64 `json:"router_degraded_p99_ns"`
	RouterOverheadNs    int64 `json:"router_overhead_ns"`
	RouterHedges        int64 `json:"router_hedges"`
	RouterRetries       int64 `json:"router_retries"`
}

func main() {
	out := flag.String("out", "BENCH_serving.json", "output JSON path")
	scenario := flag.String("scenario", "all", `scenarios to run: "serving", "index", "repl", "failover", "router", or "all"`)
	flag.Parse()
	if err := run(*out, *scenario); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-bench:", err)
		os.Exit(1)
	}
}

func run(out, scenario string) error {
	switch scenario {
	case "all", "serving", "index", "repl", "failover", "router":
	default:
		return fmt.Errorf(`unknown -scenario %q (want "serving", "index", "repl", "failover", "router", or "all")`, scenario)
	}
	// A partial run merges into the prior report so the untouched
	// scenario's numbers survive.
	var rep report
	if prev, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(prev, &rep)
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.GoVersion = runtime.Version()

	if scenario == "all" || scenario == "serving" {
		if err := runServing(&rep); err != nil {
			return err
		}
	}
	if scenario == "all" || scenario == "index" {
		if err := benchIndex(&rep); err != nil {
			return err
		}
	}
	if scenario == "all" || scenario == "repl" {
		if err := benchRepl(&rep); err != nil {
			return err
		}
	}
	if scenario == "all" || scenario == "failover" {
		if err := benchFailover(&rep); err != nil {
			return err
		}
	}
	if scenario == "all" || scenario == "router" {
		if err := benchRouter(&rep); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func runServing(rep *report) error {
	st, err := servingStore()
	if err != nil {
		return err
	}
	fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: st})
	if err != nil {
		return err
	}
	ctx := context.Background()
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	if _, err := fw.Train(ctx, trainAt); err != nil {
		return err
	}
	rep.TraceJobs = st.Len()

	one := benchBatch(1)
	batch := benchBatch(1000)

	fmt.Println("benchmarking single classify (cache hot)...")
	fw.Encoder().SetCacheCapacity(encode.DefaultCacheCapacity)
	fw.Encoder().ResetCache()
	if _, err := fw.ClassifyJobs(ctx, one); err != nil { // warm
		return err
	}
	rep.ClassifySingleHotNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, one)
		}
	})

	fmt.Println("benchmarking single classify (cache cold)...")
	fw.Encoder().SetCacheCapacity(0)
	fw.Encoder().ResetCache()
	rep.ClassifySingleColdNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, one)
		}
	})
	fw.Encoder().SetCacheCapacity(encode.DefaultCacheCapacity)

	fmt.Println("benchmarking 1000-job batch classify (workers=1)...")
	prev := runtime.GOMAXPROCS(1)
	rep.ClassifyBatch1kW1Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, batch)
		}
	})
	runtime.GOMAXPROCS(prev)

	fmt.Printf("benchmarking 1000-job batch classify (workers=%d)...\n", runtime.NumCPU())
	runtime.GOMAXPROCS(runtime.NumCPU())
	rep.ClassifyBatch1kWMxNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, batch)
		}
	})
	runtime.GOMAXPROCS(prev)

	fmt.Println("benchmarking full training pass...")
	rep.TrainNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fw.Train(ctx, trainAt); err != nil {
				b.Fatal(err)
			}
		}
	})

	fmt.Println("benchmarking admission fast path...")
	adm := admission.NewController(admission.DefaultConfig())
	rep.AdmitReleaseNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tk, err := adm.Admit(ctx, admission.Interactive, "bench")
			if err != nil {
				b.Fatal(err)
			}
			tk.Release()
		}
	})

	fmt.Println("running synthetic 10x overload burst...")
	if err := benchOverload(rep); err != nil {
		return err
	}

	fmt.Println("benchmarking WAL append per fsync policy...")
	if err := benchWAL(rep); err != nil {
		return err
	}

	fmt.Println("benchmarking streaming surface (replay, NDJSON ingest, SSE fan-out)...")
	if err := benchStream(rep); err != nil {
		return err
	}

	if rep.ClassifySingleHotNs > 0 {
		rep.CacheSpeedup = float64(rep.ClassifySingleColdNs) / float64(rep.ClassifySingleHotNs)
	}
	if rep.ClassifyBatch1kWMxNs > 0 {
		rep.BatchSpeedup = float64(rep.ClassifyBatch1kW1Ns) / float64(rep.ClassifyBatch1kWMxNs)
	}

	fmt.Printf("serving: hot=%dns cold=%dns (cache ×%.1f), batch1k w1=%dns wmax=%dns (×%.2f), train=%dns\n",
		rep.ClassifySingleHotNs, rep.ClassifySingleColdNs, rep.CacheSpeedup,
		rep.ClassifyBatch1kW1Ns, rep.ClassifyBatch1kWMxNs, rep.BatchSpeedup, rep.TrainNs)
	fmt.Printf("admission: fast path %dns; overload offered=%d admitted=%d shed(queue_full)=%d shed(doomed)=%d (reconciled)\n",
		rep.AdmitReleaseNs, rep.OverloadOffered, rep.OverloadAdmitted,
		rep.OverloadShedQueueFull, rep.OverloadShedDoomed)
	fmt.Printf("wal: append always=%dns interval=%dns never=%dns; kill recovery %d/%d acked records (exact)\n",
		rep.WALAppendAlwaysNs, rep.WALAppendIntervalNs, rep.WALAppendNeverNs,
		rep.WALKillRecovered, rep.WALKillAcked)
	fmt.Printf("stream: replay %d records in %dms; ingest %dns/record; sse fan-out %dns/event over %d subscribers\n",
		rep.ReplayRecords, rep.ReplayWallNs/1e6, rep.StreamIngestNsPerRecord,
		rep.SSEFanoutNsPerEvent, rep.SSEFanoutSubscribers)
	return nil
}

// benchStream measures the streaming surface over real HTTP: an
// instant-clock replay of one trace week through the live API (which
// also trains the model the SSE stage classifies with), sustained
// NDJSON ingest on POST /v1/jobs/stream, and SSE fan-out on
// GET /v1/predictions/stream with several concurrent subscribers.
func benchStream(rep *report) error {
	source, err := servingStore()
	if err != nil {
		return err
	}
	serverStore := store.New()
	cfg := core.DefaultConfig()
	fw, err := core.New(cfg, fetch.StoreBackend{Store: serverStore})
	if err != nil {
		return err
	}
	char := fw.Characterizer()
	mgr := replay.NewManager(replay.Options{
		Source: source,
		Clock:  replay.InstantClock{},
		Beta:   cfg.Beta,
		Truth: func(j *job.Job) (job.Label, bool) {
			pt, cerr := char.Characterize(j)
			if cerr != nil {
				return job.Unknown, false
			}
			return pt.Label, true
		},
	})
	api := httpapi.New(fw, serverStore, log.New(io.Discard, "", 0), httpapi.Options{Replay: mgr})
	mgr.SetTarget(api)
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Replay one week of the serving trace end to end — warm-up inserts,
	// initial train, per-window classify/pace/insert/retrain — through
	// the same middleware production clients hit.
	t0 := time.Now()
	if _, err := mgr.Start(replay.Config{
		Start: time.Date(2024, 1, 8, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2024, 1, 15, 0, 0, 0, 0, time.UTC),
		Speed: 100,
	}); err != nil {
		return fmt.Errorf("replay start: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := mgr.Wait(ctx); err != nil {
		return fmt.Errorf("replay wait: %w", err)
	}
	status := mgr.Status()
	if status.State != replay.StateDone {
		return fmt.Errorf("replay finished %s: %s", status.State, status.Error)
	}
	rep.ReplayWallNs = time.Since(t0).Nanoseconds()
	rep.ReplayRecords = int64(status.Records)

	// Sustained NDJSON ingest: one long-lived request per iteration,
	// fresh IDs so every record is an acknowledged insert.
	const chunk = 2000
	submit := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	var seq int
	perChunk := nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			for k := 0; k < chunk; k++ {
				s := submit.Add(time.Duration(seq) * time.Second)
				if err := enc.Encode(&job.Job{
					ID: fmt.Sprintf("ing%08d", seq), User: "u0009", Name: "ingest_app",
					Environment: "gcc/12.2", CoresRequested: 48, NodesRequested: 1,
					NodesAllocated: 1, FreqRequested: job.FreqNormal,
					SubmitTime: s, StartTime: s.Add(time.Minute), EndTime: s.Add(time.Hour),
				}); err != nil {
					b.Fatal(err)
				}
				seq++
			}
			resp, err := http.Post(srv.URL+"/v1/jobs/stream", "application/x-ndjson", &buf)
			if err != nil {
				b.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"frame":"done"`)) {
				b.Fatalf("stream ingest status %d: %s", resp.StatusCode, body)
			}
		}
	})
	rep.StreamIngestNsPerRecord = perChunk / chunk

	// SSE fan-out: a fresh server (empty resume ring) so subscriber
	// counts start at zero; classify one batch and time until every
	// subscriber has read every prediction event.
	api2 := httpapi.New(fw, serverStore, log.New(io.Discard, "", 0), httpapi.Options{})
	srv2 := httptest.NewServer(api2)
	defer srv2.Close()
	const (
		subs   = 4
		events = 400
	)
	rep.SSEFanoutSubscribers = subs
	// Failsafe: a wedged stream would hang the bench; cut connections.
	guard := time.AfterFunc(60*time.Second, srv2.CloseClientConnections)
	defer guard.Stop()
	var connected sync.WaitGroup
	connected.Add(subs)
	errCh := make(chan error, subs)
	for s := 0; s < subs; s++ {
		go func() {
			resp, err := http.Get(srv2.URL + "/v1/predictions/stream")
			if err != nil {
				connected.Done()
				errCh <- err
				return
			}
			defer resp.Body.Close()
			connected.Done()
			sc := bufio.NewScanner(resp.Body)
			n := 0
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event: prediction") {
					if n++; n == events {
						errCh <- nil
						return
					}
				}
			}
			errCh <- fmt.Errorf("sse stream ended after %d/%d events", n, events)
		}()
	}
	connected.Wait()
	t0 = time.Now()
	body, err := json.Marshal(benchBatch(events))
	if err != nil {
		return err
	}
	resp, err := http.Post(srv2.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("sse trigger classify: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sse trigger classify: status %d", resp.StatusCode)
	}
	for s := 0; s < subs; s++ {
		if err := <-errCh; err != nil {
			return fmt.Errorf("sse subscriber: %w", err)
		}
	}
	rep.SSEFanoutNsPerEvent = time.Since(t0).Nanoseconds() / (subs * events)
	return nil
}

// benchWAL measures the per-record cost of an acknowledged append under
// each fsync policy on a real temp directory (so `always` pays a true
// fsync), then replays a seeded kill on the crash-injecting filesystem
// and fails the whole bench run if recovery returns anything other than
// exactly the acknowledged prefix.
func benchWAL(rep *report) error {
	// A payload the size of a marshaled job record.
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for _, pc := range []struct {
		policy wal.Policy
		dst    *int64
	}{
		{wal.FsyncAlways, &rep.WALAppendAlwaysNs},
		{wal.FsyncInterval, &rep.WALAppendIntervalNs},
		{wal.FsyncNever, &rep.WALAppendNeverNs},
	} {
		dir, err := os.MkdirTemp("", "mcbound-walbench-")
		if err != nil {
			return err
		}
		w, _, err := wal.Open(dir, wal.Options{Policy: pc.policy}, nil)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		*pc.dst = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := w.Close(); err != nil {
			os.RemoveAll(dir)
			return err
		}
		os.RemoveAll(dir)
	}

	// The acceptance gate: kill mid-stream under fsync=always, crash,
	// recover, and require the acknowledged prefix back bit-exactly.
	fs := crashfs.New(20260805)
	w, _, err := wal.Open("wal", wal.Options{FS: fs, Policy: wal.FsyncAlways, SegmentBytes: 4096}, nil)
	if err != nil {
		return err
	}
	fs.KillAfterBytes(3000)
	acked := 0
	for i := 0; i < 500; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r-%05d", i))); err != nil {
			break
		}
		acked++
	}
	fs.Crash()
	recovered := 0
	next := 0
	w2, rec, err := wal.Open("wal", wal.Options{Policy: wal.FsyncAlways, FS: fs}, func(p []byte) error {
		if want := fmt.Sprintf("r-%05d", next); string(p) != want {
			return fmt.Errorf("recovered record %d = %q, want %q", next, p, want)
		}
		next++
		recovered++
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal kill recovery: %w", err)
	}
	w2.Close()
	rep.WALKillAcked, rep.WALKillRecovered = int64(acked), int64(recovered)
	if recovered != acked {
		return fmt.Errorf("wal kill recovery lost acknowledged records: recovered %d, acked %d (outcome %s)",
			recovered, acked, rec.Outcome())
	}
	return nil
}

// benchOverload throws a sustained 10× burst at a small admission
// budget — 40 concurrent clients against 4 slots, a tenth of them with
// a deadline below the warmed p95 (pre-doomed) — then verifies the
// books: admitted + shed(queue_full) + shed(doomed) + shed(rate_limited)
// must equal offered exactly, or the whole bench run fails.
func benchOverload(rep *report) error {
	const (
		slots     = 4
		clients   = 10 * slots
		perClient = 25
		service   = 2 * time.Millisecond
	)
	adm := admission.NewController(admission.Config{
		MinConcurrency:     2,
		MaxConcurrency:     slots,
		InitialConcurrency: slots,
		QueueDepth:         2 * slots,
		AdjustEvery:        32,
	})
	// Warm the p95 estimator so doomed-request shedding is armed.
	for i := 0; i < 32; i++ {
		adm.Limiter().Observe(service)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				reqCtx := ctx
				if w < clients/10 && k%2 == 0 {
					var cancel context.CancelFunc
					reqCtx, cancel = context.WithTimeout(ctx, service/4)
					defer cancel()
				}
				tk, err := adm.Admit(reqCtx, admission.Interactive, "")
				if err != nil {
					continue
				}
				time.Sleep(service)
				tk.Release()
			}
		}(w)
	}
	wg.Wait()

	s := adm.Stats()
	rep.OverloadOffered = s.Offered
	rep.OverloadAdmitted = s.Admitted
	rep.OverloadShedQueueFull = s.ShedQueueFull
	rep.OverloadShedDoomed = s.ShedDoomed
	if got := s.Admitted + s.Shed(); got != s.Offered {
		return fmt.Errorf("overload accounting does not reconcile: admitted %d + shed %d != offered %d (%+v)",
			s.Admitted, s.Shed(), s.Offered, s)
	}
	if s.ShedCanceled != 0 {
		return fmt.Errorf("overload accounting misclassified %d deadline expiries as cancels", s.ShedCanceled)
	}
	if s.Admitted == 0 {
		return fmt.Errorf("overload burst produced zero goodput")
	}
	return nil
}

// nsPerOp runs fn under the testing benchmark driver and returns its
// per-iteration cost.
func nsPerOp(fn func(b *testing.B)) int64 {
	return testing.Benchmark(fn).NsPerOp()
}

func mustClassify(b *testing.B, fw *core.Framework, ctx context.Context, jobs []*job.Job) {
	preds, err := fw.ClassifyJobs(ctx, jobs)
	if err != nil {
		b.Fatal(err)
	}
	if len(preds) != len(jobs) {
		b.Fatal("short batch")
	}
}

// servingStore is the two-app seed trace the internal/core serving
// benchmarks train on: 31 days, six submissions per app per day, one
// clean memory-bound and one clean compute-bound application.
func servingStore() (*store.Store, error) {
	st := store.New()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	seq := 0
	add := func(day int, name string, perfGF, bwGB float64) error {
		submit := start.AddDate(0, 0, day)
		durSec := 1800.0
		err := st.Insert(&job.Job{
			ID:             fmt.Sprintf("c%05d", seq),
			User:           "u0001",
			Name:           name,
			Environment:    "gcc/12.2",
			CoresRequested: 48,
			NodesRequested: 1,
			NodesAllocated: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit,
			StartTime:      submit.Add(time.Minute),
			EndTime:        submit.Add(31 * time.Minute),
			Counters: job.PerfCounters{
				Perf2: perfGF * 1e9 * durSec,
				Perf4: bwGB * 1e9 * durSec * job.CoresPerCMG / job.CacheLineBytes,
			},
		})
		seq++
		return err
	}
	for day := 0; day < 31; day++ {
		for i := 0; i < 6; i++ {
			if err := add(day, "membound_app", 50, 50); err != nil {
				return nil, err
			}
			if err := add(day, "compbound_app", 300, 5); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// benchBatch mirrors the in-package serving benchmark workload: n
// submitted jobs over a small set of repeating feature strings.
func benchBatch(n int) []*job.Job {
	submit := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]*job.Job, n)
	for i := range batch {
		batch[i] = &job.Job{
			ID:             fmt.Sprintf("b%05d", i),
			User:           fmt.Sprintf("u%04d", i%17),
			Name:           fmt.Sprintf("svc_app_%02d", i%50),
			Environment:    "gcc/12.2",
			CoresRequested: 48,
			NodesRequested: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit.Add(time.Duration(i) * time.Second),
		}
	}
	return batch
}
