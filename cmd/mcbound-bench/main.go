// Command mcbound-bench measures the serving-path costs of the deployed
// framework — single classify hot and cold in the embedding cache,
// 1000-job batch classify serial vs. across every core, and a full
// Training Workflow pass — and writes them as JSON (BENCH_serving.json
// by default) so successive commits have a perf trajectory to compare
// number to number.
//
// Usage:
//
//	mcbound-bench -out BENCH_serving.json
//
// The workload mirrors the serving benchmarks in internal/core
// (BenchmarkClassifyBatch, BenchmarkClassifySingle, BenchmarkTrain): a
// deterministic two-app trace whose shallow model keeps the serving
// mechanics — cache lookups, worker fan-out, hot-swap reads — visible
// instead of swamped by tree depth. The derived ratios are the two
// acceptance numbers of the concurrency work: batch_speedup (workers-1
// over workers-max, meaningful on multi-core hosts) and cache_speedup
// (cold over hot single classify).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mcbound/internal/admission"
	"mcbound/internal/core"
	"mcbound/internal/encode"
	"mcbound/internal/fetch"
	"mcbound/internal/job"
	"mcbound/internal/store"
	"mcbound/internal/wal"
	"mcbound/internal/wal/crashfs"
)

// report is the BENCH_serving.json schema.
type report struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	TraceJobs  int    `json:"trace_jobs"`

	// ns/op per workload.
	ClassifySingleHotNs  int64 `json:"classify_single_hot_ns"`
	ClassifySingleColdNs int64 `json:"classify_single_cold_ns"`
	ClassifyBatch1kW1Ns  int64 `json:"classify_batch1k_workers1_ns"`
	ClassifyBatch1kWMxNs int64 `json:"classify_batch1k_workersmax_ns"`
	TrainNs              int64 `json:"train_ns"`

	// Derived ratios.
	CacheSpeedup float64 `json:"cache_speedup"`
	BatchSpeedup float64 `json:"batch_speedup"`

	// Admission-control costs: the fast-path toll every request pays,
	// and the outcome of a synthetic 10× overload burst (the run aborts
	// with exit 1 if the shed accounting does not reconcile exactly).
	AdmitReleaseNs        int64 `json:"admit_release_ns"`
	OverloadOffered       int64 `json:"overload_offered"`
	OverloadAdmitted      int64 `json:"overload_admitted"`
	OverloadShedQueueFull int64 `json:"overload_shed_queue_full"`
	OverloadShedDoomed    int64 `json:"overload_shed_doomed"`

	// Durable-store costs: ns per acknowledged WAL append on a real
	// filesystem, per fsync policy, plus the simulated-kill recovery
	// gate (the run aborts with exit 1 if fsync=always recovery loses
	// an acknowledged record).
	WALAppendAlwaysNs   int64 `json:"wal_append_always_ns"`
	WALAppendIntervalNs int64 `json:"wal_append_interval_ns"`
	WALAppendNeverNs    int64 `json:"wal_append_never_ns"`
	WALKillAcked        int64 `json:"wal_kill_acked_records"`
	WALKillRecovered    int64 `json:"wal_kill_recovered_records"`
}

func main() {
	out := flag.String("out", "BENCH_serving.json", "output JSON path")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-bench:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	st, err := servingStore()
	if err != nil {
		return err
	}
	fw, err := core.New(core.DefaultConfig(), fetch.StoreBackend{Store: st})
	if err != nil {
		return err
	}
	ctx := context.Background()
	trainAt := time.Date(2024, 1, 20, 0, 0, 0, 0, time.UTC)
	if _, err := fw.Train(ctx, trainAt); err != nil {
		return err
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		TraceJobs:  st.Len(),
	}

	one := benchBatch(1)
	batch := benchBatch(1000)

	fmt.Println("benchmarking single classify (cache hot)...")
	fw.Encoder().SetCacheCapacity(encode.DefaultCacheCapacity)
	fw.Encoder().ResetCache()
	if _, err := fw.ClassifyJobs(ctx, one); err != nil { // warm
		return err
	}
	rep.ClassifySingleHotNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, one)
		}
	})

	fmt.Println("benchmarking single classify (cache cold)...")
	fw.Encoder().SetCacheCapacity(0)
	fw.Encoder().ResetCache()
	rep.ClassifySingleColdNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, one)
		}
	})
	fw.Encoder().SetCacheCapacity(encode.DefaultCacheCapacity)

	fmt.Println("benchmarking 1000-job batch classify (workers=1)...")
	prev := runtime.GOMAXPROCS(1)
	rep.ClassifyBatch1kW1Ns = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, batch)
		}
	})
	runtime.GOMAXPROCS(prev)

	fmt.Printf("benchmarking 1000-job batch classify (workers=%d)...\n", runtime.NumCPU())
	runtime.GOMAXPROCS(runtime.NumCPU())
	rep.ClassifyBatch1kWMxNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustClassify(b, fw, ctx, batch)
		}
	})
	runtime.GOMAXPROCS(prev)

	fmt.Println("benchmarking full training pass...")
	rep.TrainNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fw.Train(ctx, trainAt); err != nil {
				b.Fatal(err)
			}
		}
	})

	fmt.Println("benchmarking admission fast path...")
	adm := admission.NewController(admission.DefaultConfig())
	rep.AdmitReleaseNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tk, err := adm.Admit(ctx, admission.Interactive, "bench")
			if err != nil {
				b.Fatal(err)
			}
			tk.Release()
		}
	})

	fmt.Println("running synthetic 10x overload burst...")
	if err := benchOverload(&rep); err != nil {
		return err
	}

	fmt.Println("benchmarking WAL append per fsync policy...")
	if err := benchWAL(&rep); err != nil {
		return err
	}

	if rep.ClassifySingleHotNs > 0 {
		rep.CacheSpeedup = float64(rep.ClassifySingleColdNs) / float64(rep.ClassifySingleHotNs)
	}
	if rep.ClassifyBatch1kWMxNs > 0 {
		rep.BatchSpeedup = float64(rep.ClassifyBatch1kW1Ns) / float64(rep.ClassifyBatch1kWMxNs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: hot=%dns cold=%dns (cache ×%.1f), batch1k w1=%dns wmax=%dns (×%.2f), train=%dns\n",
		out, rep.ClassifySingleHotNs, rep.ClassifySingleColdNs, rep.CacheSpeedup,
		rep.ClassifyBatch1kW1Ns, rep.ClassifyBatch1kWMxNs, rep.BatchSpeedup, rep.TrainNs)
	fmt.Printf("admission: fast path %dns; overload offered=%d admitted=%d shed(queue_full)=%d shed(doomed)=%d (reconciled)\n",
		rep.AdmitReleaseNs, rep.OverloadOffered, rep.OverloadAdmitted,
		rep.OverloadShedQueueFull, rep.OverloadShedDoomed)
	fmt.Printf("wal: append always=%dns interval=%dns never=%dns; kill recovery %d/%d acked records (exact)\n",
		rep.WALAppendAlwaysNs, rep.WALAppendIntervalNs, rep.WALAppendNeverNs,
		rep.WALKillRecovered, rep.WALKillAcked)
	return nil
}

// benchWAL measures the per-record cost of an acknowledged append under
// each fsync policy on a real temp directory (so `always` pays a true
// fsync), then replays a seeded kill on the crash-injecting filesystem
// and fails the whole bench run if recovery returns anything other than
// exactly the acknowledged prefix.
func benchWAL(rep *report) error {
	// A payload the size of a marshaled job record.
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for _, pc := range []struct {
		policy wal.Policy
		dst    *int64
	}{
		{wal.FsyncAlways, &rep.WALAppendAlwaysNs},
		{wal.FsyncInterval, &rep.WALAppendIntervalNs},
		{wal.FsyncNever, &rep.WALAppendNeverNs},
	} {
		dir, err := os.MkdirTemp("", "mcbound-walbench-")
		if err != nil {
			return err
		}
		w, _, err := wal.Open(dir, wal.Options{Policy: pc.policy}, nil)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		*pc.dst = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := w.Close(); err != nil {
			os.RemoveAll(dir)
			return err
		}
		os.RemoveAll(dir)
	}

	// The acceptance gate: kill mid-stream under fsync=always, crash,
	// recover, and require the acknowledged prefix back bit-exactly.
	fs := crashfs.New(20260805)
	w, _, err := wal.Open("wal", wal.Options{FS: fs, Policy: wal.FsyncAlways, SegmentBytes: 4096}, nil)
	if err != nil {
		return err
	}
	fs.KillAfterBytes(3000)
	acked := 0
	for i := 0; i < 500; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r-%05d", i))); err != nil {
			break
		}
		acked++
	}
	fs.Crash()
	recovered := 0
	next := 0
	w2, rec, err := wal.Open("wal", wal.Options{Policy: wal.FsyncAlways, FS: fs}, func(p []byte) error {
		if want := fmt.Sprintf("r-%05d", next); string(p) != want {
			return fmt.Errorf("recovered record %d = %q, want %q", next, p, want)
		}
		next++
		recovered++
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal kill recovery: %w", err)
	}
	w2.Close()
	rep.WALKillAcked, rep.WALKillRecovered = int64(acked), int64(recovered)
	if recovered != acked {
		return fmt.Errorf("wal kill recovery lost acknowledged records: recovered %d, acked %d (outcome %s)",
			recovered, acked, rec.Outcome())
	}
	return nil
}

// benchOverload throws a sustained 10× burst at a small admission
// budget — 40 concurrent clients against 4 slots, a tenth of them with
// a deadline below the warmed p95 (pre-doomed) — then verifies the
// books: admitted + shed(queue_full) + shed(doomed) + shed(rate_limited)
// must equal offered exactly, or the whole bench run fails.
func benchOverload(rep *report) error {
	const (
		slots     = 4
		clients   = 10 * slots
		perClient = 25
		service   = 2 * time.Millisecond
	)
	adm := admission.NewController(admission.Config{
		MinConcurrency:     2,
		MaxConcurrency:     slots,
		InitialConcurrency: slots,
		QueueDepth:         2 * slots,
		AdjustEvery:        32,
	})
	// Warm the p95 estimator so doomed-request shedding is armed.
	for i := 0; i < 32; i++ {
		adm.Limiter().Observe(service)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				reqCtx := ctx
				if w < clients/10 && k%2 == 0 {
					var cancel context.CancelFunc
					reqCtx, cancel = context.WithTimeout(ctx, service/4)
					defer cancel()
				}
				tk, err := adm.Admit(reqCtx, admission.Interactive, "")
				if err != nil {
					continue
				}
				time.Sleep(service)
				tk.Release()
			}
		}(w)
	}
	wg.Wait()

	s := adm.Stats()
	rep.OverloadOffered = s.Offered
	rep.OverloadAdmitted = s.Admitted
	rep.OverloadShedQueueFull = s.ShedQueueFull
	rep.OverloadShedDoomed = s.ShedDoomed
	if got := s.Admitted + s.Shed(); got != s.Offered {
		return fmt.Errorf("overload accounting does not reconcile: admitted %d + shed %d != offered %d (%+v)",
			s.Admitted, s.Shed(), s.Offered, s)
	}
	if s.ShedCanceled != 0 {
		return fmt.Errorf("overload accounting misclassified %d deadline expiries as cancels", s.ShedCanceled)
	}
	if s.Admitted == 0 {
		return fmt.Errorf("overload burst produced zero goodput")
	}
	return nil
}

// nsPerOp runs fn under the testing benchmark driver and returns its
// per-iteration cost.
func nsPerOp(fn func(b *testing.B)) int64 {
	return testing.Benchmark(fn).NsPerOp()
}

func mustClassify(b *testing.B, fw *core.Framework, ctx context.Context, jobs []*job.Job) {
	preds, err := fw.ClassifyJobs(ctx, jobs)
	if err != nil {
		b.Fatal(err)
	}
	if len(preds) != len(jobs) {
		b.Fatal("short batch")
	}
}

// servingStore is the two-app seed trace the internal/core serving
// benchmarks train on: 31 days, six submissions per app per day, one
// clean memory-bound and one clean compute-bound application.
func servingStore() (*store.Store, error) {
	st := store.New()
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	seq := 0
	add := func(day int, name string, perfGF, bwGB float64) error {
		submit := start.AddDate(0, 0, day)
		durSec := 1800.0
		err := st.Insert(&job.Job{
			ID:             fmt.Sprintf("c%05d", seq),
			User:           "u0001",
			Name:           name,
			Environment:    "gcc/12.2",
			CoresRequested: 48,
			NodesRequested: 1,
			NodesAllocated: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit,
			StartTime:      submit.Add(time.Minute),
			EndTime:        submit.Add(31 * time.Minute),
			Counters: job.PerfCounters{
				Perf2: perfGF * 1e9 * durSec,
				Perf4: bwGB * 1e9 * durSec * job.CoresPerCMG / job.CacheLineBytes,
			},
		})
		seq++
		return err
	}
	for day := 0; day < 31; day++ {
		for i := 0; i < 6; i++ {
			if err := add(day, "membound_app", 50, 50); err != nil {
				return nil, err
			}
			if err := add(day, "compbound_app", 300, 5); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// benchBatch mirrors the in-package serving benchmark workload: n
// submitted jobs over a small set of repeating feature strings.
func benchBatch(n int) []*job.Job {
	submit := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]*job.Job, n)
	for i := range batch {
		batch[i] = &job.Job{
			ID:             fmt.Sprintf("b%05d", i),
			User:           fmt.Sprintf("u%04d", i%17),
			Name:           fmt.Sprintf("svc_app_%02d", i%50),
			Environment:    "gcc/12.2",
			CoresRequested: 48,
			NodesRequested: 1,
			FreqRequested:  job.FreqNormal,
			SubmitTime:     submit.Add(time.Duration(i) * time.Second),
		}
	}
	return batch
}
