// Command mcbound-replay replays the MCBound deployment loop (deploy →
// train → classify → cron retrain, paper §III-E) over a trace with a
// virtual clock, printing the operational timeline. It answers "what
// would the deployed framework have done over this period" without
// standing up the HTTP backend.
//
// Usage:
//
//	mcbound-replay -generate -scale 0.01 -from 2024-02-05 -to 2024-02-12
//	mcbound-replay -trace jobs.jsonl -model knn -alpha 30 -beta 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcbound/internal/core"
	"mcbound/internal/experiments"
	"mcbound/internal/fetch"
	"mcbound/internal/simulate"
	"mcbound/internal/store"
	"mcbound/internal/workload"
)

func main() {
	var (
		trace    = flag.String("trace", "", "JSONL trace file")
		generate = flag.Bool("generate", false, "generate a synthetic trace instead")
		scale    = flag.Float64("scale", 0.01, "synthetic trace scale")
		seed     = flag.Uint64("seed", 7, "synthetic trace seed")
		model    = flag.String("model", "rf", "classification model: rf or knn")
		alpha    = flag.Int("alpha", 15, "training window in days")
		beta     = flag.Int("beta", 1, "retraining period in days")
		from     = flag.String("from", "2024-02-05", "replay start (YYYY-MM-DD)")
		to       = flag.String("to", "2024-02-12", "replay end (YYYY-MM-DD)")
	)
	flag.Parse()

	if err := run(*trace, *generate, *scale, *seed, *model, *alpha, *beta, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "mcbound-replay:", err)
		os.Exit(1)
	}
}

func run(trace string, generate bool, scale float64, seed uint64, model string, alpha, beta int, from, to string) error {
	start, err := time.Parse("2006-01-02", from)
	if err != nil {
		return fmt.Errorf("bad -from: %w", err)
	}
	end, err := time.Parse("2006-01-02", to)
	if err != nil {
		return fmt.Errorf("bad -to: %w", err)
	}

	var st *store.Store
	switch {
	case generate:
		env, err := experiments.NewEnv(workload.EvalConfig(scale), seed)
		if err != nil {
			return err
		}
		st = env.Store
	case trace != "":
		if st, err = store.LoadFile(trace); err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -trace or -generate is required")
	}

	cfg := core.DefaultConfig()
	cfg.Model = core.ModelKind(model)
	cfg.Alpha, cfg.Beta = alpha, beta
	fw, err := core.New(cfg, fetch.StoreBackend{Store: st})
	if err != nil {
		return err
	}

	fmt.Printf("replaying %s deployment (α=%d β=%d) over [%s, %s)\n\n",
		model, alpha, beta, from, to)
	// Ctrl-C aborts the replay at the next trigger boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r := &simulate.Replay{Framework: fw, Log: os.Stdout}
	tl, err := r.Run(ctx, start, end)
	if err != nil {
		return err
	}
	fmt.Printf("\ntimeline: %d trainings, %d inference triggers, %d jobs classified\n",
		tl.Trainings(), tl.Inferences(), tl.TotalClassified())
	return nil
}
