GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fmt fuzz chaos chaos-repl chaos-elect chaos-router stress crash replay-e2e check bench bench-index bench-repl bench-failover bench-router bench-all

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if any.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fault-injection suite: replays the online algorithm against a jobs
# data storage with injected transient/permanent faults (including a
# mid-replay crash + registry restore) and checks the degraded-mode
# accounting, under the race detector.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/...

# Short smoke runs of every fuzz target (go allows one -fuzz pattern
# per invocation, so one line each).
fuzz:
	$(GO) test -run=^$$ -fuzz=^FuzzTokenize$$ -fuzztime=$(FUZZTIME) ./internal/encode
	$(GO) test -run=^$$ -fuzz=^FuzzEmbed$$ -fuzztime=$(FUZZTIME) ./internal/encode
	$(GO) test -run=^$$ -fuzz=^FuzzReadJSONL$$ -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run=^$$ -fuzz=^FuzzTimeoutHeader$$ -fuzztime=$(FUZZTIME) ./internal/admission
	$(GO) test -run=^$$ -fuzz=^FuzzWALFrame$$ -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run=^$$ -fuzz=^FuzzCursor$$ -fuzztime=$(FUZZTIME) ./internal/httpapi
	$(GO) test -run=^$$ -fuzz=^FuzzIndexModel$$ -fuzztime=$(FUZZTIME) ./internal/ml/knn

# Replication chaos suite: a crashfs-backed leader is killed at seeded
# byte offsets mid-group-commit, mid-compaction and mid-retrain; the
# follower must keep serving reads throughout, drain the leader's
# durable prefix, and a promotion must surface every acknowledged
# insert on the new leader (and nothing never attempted), under the
# race detector.
chaos-repl:
	$(GO) test -race -count=1 -run 'ReplChaos' ./internal/repl

# Election chaos suite: three live nodes under seeded heartbeat
# blackholes, wedged leader disks (mid-group-commit / mid-compaction),
# hard kills and asymmetric partitions; asserts at most one node holds
# an ackable lease at any sampled instant, zero acked-write loss across
# every unassisted failover, and bounded time-to-new-leader, under the
# race detector.
chaos-elect:
	$(GO) test -race -count=1 -run 'ElectChaos' ./internal/election

# Front-door chaos suite: seeded dead-backend + 10×-slow-backend reads
# with zero client-observed errors and a bounded p99, a leader kill
# mid-write-stream with at most one hard failure before the 421 chase
# re-points, a backend kill mid-SSE, and a router restart mid-SSE with
# Last-Event-ID continuity — all under the race detector.
chaos-router:
	$(GO) test -race -count=1 -run 'RouterChaos' ./internal/router

# Overload stress: drives the admission controller and the full HTTP
# serving path through a 10x concurrency burst under the race detector
# and checks the shed-accounting identity holds exactly.
stress:
	$(GO) test -race -count=1 -run 'Overload|AccountingIdentityUnderStress' ./internal/admission ./internal/httpapi

# Crash-consistency suite: seeded kill points at arbitrary byte offsets
# over a fault-injecting filesystem (torn writes, bit flips, lost
# unsynced tails); checks acknowledged inserts survive recovery exactly,
# under the race detector.
crash:
	$(GO) test -race -count=1 -run 'Crash' ./internal/wal ./internal/store

# Golden replay equivalence: a ×100 replay through the live HTTP path
# (NDJSON ingest, classify, train) must reproduce the offline
# simulator's timeline — model versions and per-day F1 to 3 decimals —
# and a paused replay must resume without duplicating or dropping
# records.
replay-e2e:
	$(GO) test -race -count=1 -run 'ReplayE2E' ./internal/replay

check: build vet fmt race chaos chaos-repl chaos-elect chaos-router stress crash fuzz replay-e2e bench-index

# Serving-path perf trajectory: single classify hot/cold in the
# embedding cache, 1000-job batch serial vs. all cores, full train.
bench:
	$(GO) run ./cmd/mcbound-bench -out BENCH_serving.json

# Recall-gated index sweep: brute-force vs IVF classify latency and
# measured recall at training-set scales ×1/×10/×100; exits 1 if
# recall@k drops below 0.95 at any scale.
bench-index:
	$(GO) run ./cmd/mcbound-bench -scenario index -out BENCH_serving.json

# Replication trajectory: steady-state follower lag p50/p99 and
# leader-death → first-accepted-write failover time; exits 1 if the
# promoted leader lost any acknowledged insert.
bench-repl:
	$(GO) run ./cmd/mcbound-bench -scenario repl -out BENCH_serving.json

# Unassisted failover trajectory: >= 20 seeded leader kills under live
# electors; records leader-death → first-accepted-write p50/p99 with no
# operator promote; exits 1 on any acked-write loss.
bench-failover:
	$(GO) run ./cmd/mcbound-bench -scenario failover -out BENCH_serving.json

# Front-door trajectory: read p50/p99 through the router healthy vs
# one-dead-one-10×-slow, router overhead over a direct read, hedge and
# retry counts; exits 1 if any degraded read errors to the client.
bench-router:
	$(GO) run ./cmd/mcbound-bench -scenario router -out BENCH_serving.json

bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
