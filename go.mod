module mcbound

go 1.22
