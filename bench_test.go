// Module-level benchmarks: one per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each bench
// regenerates the corresponding quantity on a reduced-scale trace; the
// cmd/mcbound-characterize and cmd/mcbound-eval binaries run the same
// drivers at full scale.
//
// The per-package micro-benchmarks (encode, ml/knn, ml/rf, roofline,
// workload) cover the component costs; these cover the end-to-end
// experiment paths.
package mcbound_test

import (
	"io"
	"sync"
	"testing"

	"mcbound/internal/experiments"
	"mcbound/internal/online"
	"mcbound/internal/workload"
)

// benchScale keeps every experiment bench in the sub-minute range on a
// single core.
const benchScale = 0.005

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

// benchEnv generates the shared evaluation trace once per bench run.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiments.NewEnv(workload.EvalConfig(benchScale), 7)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// BenchmarkTable1RidgePoint covers Table I: deriving the machine model
// and ridge point from the Fugaku specification.
func BenchmarkTable1RidgePoint(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := env.Characterizer.RidgePoint(); r < 3 {
			b.Fatal("bad ridge")
		}
	}
}

// BenchmarkFig2To5Table2Characterization covers Figs. 2–5 and Table II:
// the full §IV characterization sweep over the trace.
func BenchmarkFig2To5Table2Characterization(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Characterize(env)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Labeled == 0 {
			b.Fatal("nothing labeled")
		}
	}
}

// benchOnlineCell runs one online-evaluation configuration end to end
// (trace fetch → characterize → encode → train → infer → score).
func benchOnlineCell(b *testing.B, model experiments.ModelName, p online.Params) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOnline(env, model, p)
		if err != nil {
			b.Fatal(err)
		}
		if res.TestJobs == 0 {
			b.Fatal("no test jobs")
		}
		b.ReportMetric(res.F1, "F1")
	}
}

// BenchmarkFig6KNNBestCell / BenchmarkFig6RFBestCell cover Fig. 6: one
// α×β grid cell each at the per-model best settings (the full grid is
// cmd/mcbound-eval -exp alpha-beta).
func BenchmarkFig6KNNBestCell(b *testing.B) {
	benchOnlineCell(b, experiments.KNN, online.Params{Alpha: 30, Beta: 1, Seed: 7})
}

func BenchmarkFig6RFBestCell(b *testing.B) {
	benchOnlineCell(b, experiments.RF, online.Params{Alpha: 15, Beta: 1, Seed: 7})
}

// BenchmarkFig6LargeBeta covers the β-axis of Fig. 6 (infrequent
// retraining).
func BenchmarkFig6LargeBeta(b *testing.B) {
	benchOnlineCell(b, experiments.RF, online.Params{Alpha: 15, Beta: 10, Seed: 7})
}

// BenchmarkFig7TrainingTime covers Fig. 7: it isolates the per-trigger
// training cost at growing α (the cell's AvgTrainTime is the figure's
// y-value; the bench wall time tracks it).
func BenchmarkFig7TrainingTime(b *testing.B) {
	for _, alpha := range []int{15, 30, 60} {
		b.Run("alpha="+itoa(alpha), func(b *testing.B) {
			benchOnlineCell(b, experiments.RF, online.Params{Alpha: alpha, Beta: 5, Seed: 7})
		})
	}
}

// BenchmarkFig8InferenceTime covers Fig. 8: per-job inference cost
// (encoding included) for KNN at growing α.
func BenchmarkFig8InferenceTime(b *testing.B) {
	for _, alpha := range []int{15, 30, 60} {
		b.Run("alpha="+itoa(alpha), func(b *testing.B) {
			benchOnlineCell(b, experiments.KNN, online.Params{Alpha: alpha, Beta: 5, Seed: 7})
		})
	}
}

// BenchmarkBaselineComparison covers §V.C.a: the (job name, #cores)
// lookup baseline under the online algorithm.
func BenchmarkBaselineComparison(b *testing.B) {
	benchOnlineCell(b, experiments.Baseline, online.Params{Alpha: 30, Beta: 1, Seed: 7})
}

// BenchmarkAlphaPlus covers §V.C.b: the growing α⁺ window.
func BenchmarkAlphaPlusKNN(b *testing.B) {
	benchOnlineCell(b, experiments.KNN, online.Params{Alpha: 30, Beta: 1, AlphaPlus: true, Seed: 7})
}

// BenchmarkFig9Fig10Theta covers Figs. 9–10: θ-subsampled retraining,
// random vs latest.
func BenchmarkFig9Fig10Theta(b *testing.B) {
	for _, mode := range []online.ThetaMode{online.ThetaRandom, online.ThetaLatest} {
		b.Run(mode.String(), func(b *testing.B) {
			benchOnlineCell(b, experiments.RF, online.Params{
				Alpha: 15, Beta: 1, Theta: 200, ThetaMode: mode, Seed: 520,
			})
		})
	}
}

// BenchmarkTraceGeneration covers the substrate itself: synthesizing the
// evaluation trace (the F-DATA stand-in).
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := workload.EvalConfig(benchScale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jobs, err := workload.NewGenerator(cfg, uint64(i)).Generate()
		if err != nil {
			b.Fatal(err)
		}
		if len(jobs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkImpactReports exercises the report writers of the §IV
// analysis (the cheap rendering layer on top of the characterization).
func BenchmarkImpactReports(b *testing.B) {
	env := benchEnv(b)
	sum, err := experiments.Characterize(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum.WriteFig2(io.Discard)
		sum.WriteFig3(io.Discard, env.Characterizer.RidgePoint())
		sum.WriteFig4(io.Discard)
		sum.WriteFig5(io.Discard)
		sum.WriteTable2(io.Discard)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
