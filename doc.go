// Package mcbound is a from-scratch Go reproduction of "MCBound: An
// Online Framework to Characterize and Classify Memory/Compute-bound HPC
// Jobs" (Antici et al., SC 2024).
//
// The root package only anchors the module-level benchmarks in
// bench_test.go; the implementation lives under internal/ (one package
// per subsystem, see DESIGN.md) and the runnable entry points under
// cmd/ and examples/.
package mcbound
